//! The profile-serving tier: cached closed-form profiles answering windowed
//! queries for many tenants, built for a long-lived process.
//!
//! [`ProfileService`] fronts the closed-form analytics of
//! [`CycleProfile`](crate::analysis::CycleProfile) with the three things a
//! server needs that a batch binary does not:
//!
//! * **A schedule-hash-keyed profile cache.**  Every registered tenant maps
//!   to a 64-bit content key — FNV-1a over the conflict graph's adjacency
//!   and the residue schedule's `(slot, modulus)` assignment plus the first
//!   holiday — and profiles are cached **per key, not per tenant**: tenants
//!   submitting an identical (graph, schedule) pair share one immutable
//!   profile build.  The key is returned by [`ProfileService::register`] so
//!   callers can correlate invalidations.
//! * **An explicit invalidation contract.**  Nothing expires implicitly: a
//!   cached profile is dropped only by [`ProfileService::invalidate`] (or
//!   [`invalidate_all`](ProfileService::invalidate_all)), which evicts the
//!   *schedule key* — every tenant sharing it goes cold together — and by
//!   re-[`register`](ProfileService::register)ing a tenant whose schedule
//!   content changed (the hash no longer matches, so the tenant rebinds to
//!   a fresh key; the old key is dropped when its last tenant leaves).
//!   Cold keys rebuild on the next [`build_pending`](ProfileService::build_pending).
//! * **Total, typed request handling.**  Registration validates *before*
//!   building — a non-periodic scheduler, an over-budget cycle or an
//!   over-budget attendance volume is a [`RegisterError`], never an unwrap
//!   crash or a budget assert — and queries return [`QueryError`] for
//!   unknown tenants or cold profiles.  The window fold itself is total:
//!   zero-width, inverted and sub-cycle windows all take defined paths
//!   (see [`CycleProfile::derive_window`](crate::analysis::CycleProfile::derive_window)).
//!
//! # Slot lifecycle: Building → Warm → Quarantined
//!
//! Every cached slot is in exactly one [`SlotState`]:
//!
//! * **Building** — registered (or invalidated) but not yet built; queries
//!   return [`QueryError::ProfileNotBuilt`] until the next
//!   [`build_pending`](ProfileService::build_pending).
//! * **Warm** — a verified [`CycleProfile`] is cached and serving.
//! * **Quarantined** — something went wrong *after* a commit point (a
//!   panic mid-patch, a build worker that died, a background-audit
//!   mismatch) and the cached state can no longer be trusted.  Queries
//!   return the typed [`QueryError::Quarantined`] — the tier never serves
//!   a possibly-poisoned profile — and
//!   [`repair_quarantined`](ProfileService::repair_quarantined) rebuilds
//!   the slot cold from its (graph, schedule) content, which is always
//!   kept consistent.  The [`QuarantineReason`] is retained for
//!   observability.
//!
//! # Incremental repair and the commit-point contract
//!
//! A mutating tenant does not have to go cold: [`ProfileService::patch`]
//! applies one dynamic edge event (the [`EventRepair`] its scheduler
//! returned) straight to the cached profile — copy-on-write detach when
//! the profile is shared, lane-level repair through
//! [`CycleProfile::patch`](crate::analysis::CycleProfile::patch), and a
//! guarded fall-back to a full rebuild when the event touches more lanes
//! than the `FHG_PATCH_LIMIT` knob allows ([`patch_limit`]).
//!
//! The patch runs **prepare → validate → commit**.  Prepare mirrors the
//! edge event onto the slot's private graph (a typed [`PatchError::Graph`]
//! failure here leaves everything untouched) and stages the row changes.
//! Validate re-checks the profile budgets; a violation **rolls back** the
//! rows and the edge event, so the slot's graph/schedule/profile trio is
//! bitwise the pre-event state and keeps serving
//! ([`PatchError::BudgetExceeded`]).  Only then does the profile repair
//! commit.  A panic past the prepare phase (an injected failpoint, a bug)
//! is caught and **quarantines** the tenant instead of unwinding into the
//! caller or leaving a half-mutated slot serving wrong answers
//! ([`PatchError::Quarantined`]); the slot's content is post-event, so the
//! cold rebuild converges with the caller's scheduler.
//!
//! # Background integrity audit
//!
//! [`ProfileService::audit_step`] is an amortized scrubber: each call
//! re-derives `k` warm slots (round-robin by key) through the sequential
//! reference sweep [`analyze_schedule_reference`] with a fresh
//! [`GraphChecker`] — a path that shares no state, scratch or checker with
//! the serving fast paths — and quarantines any slot whose cached totals
//! or independence verdict disagree.  This is the layer that catches
//! *silent* corruption (e.g. an injected `checker.batch` fault that flips
//! a patched verdict) which typed errors and panic quarantine cannot see.
//! [`AuditStats`] joins [`CacheStats`] in the observability surface.
//!
//! Every cache transition is counted ([`ProfileService::stats`],
//! [`CacheStats`]): hits, misses, in-place patches, full rebuilds,
//! evictions and quarantines.
//!
//! # Fault injection
//!
//! The tier's failure paths are driven deterministically by the
//! [`failpoint`](crate::failpoint) sites `patch.after_rows`,
//! `build.slot`, `query.batch`, `profile.patch.validate`,
//! `profile.patch.commit`, `checker.batch`, `wal.append`,
//! `snapshot.write` and `recover.replay` (see `FHG_FAILPOINTS`);
//! `tests/chaos.rs` replays seeded event/query/fault interleavings
//! against a fault-free oracle at several thread counts, and kills
//! snapshot/WAL writes at every byte boundary.
//!
//! # Durability
//!
//! The [`persist`] submodule makes the tier crash-durable: checksummed
//! atomic snapshots ([`ProfileService::snapshot`]), an append-only event
//! WAL ([`WalWriter`]) and torn-write recovery
//! ([`ProfileService::recover`]) that replays the log through the patch
//! plane and audits a sample before serving.  See that module's docs for
//! the on-disk format and the recovery state machine; the
//! `FHG_SNAPSHOT_DIR` ([`snapshot_dir`]) and `FHG_WAL_SYNC`
//! ([`wal_sync`]) knobs live there too.
//!
//! # Batch front and sharding
//!
//! [`ProfileService::build_pending`] builds every cold profile, sharded
//! across the persistent worker pool — one worker per profile, and each
//! build's internal cycle walk shards further (the pool's caller always
//! participates in a batch, so the nesting cannot deadlock).
//! [`ProfileService::query_batch`] / [`query_batch_full`](ProfileService::query_batch_full)
//! answer a request slice in parallel the same way; each worker reuses its
//! thread-local derivation scratch, so steady-state totals queries perform
//! **zero heap allocations** per request (proved by `tests/zero_alloc.rs`).

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

use fhg_graph::{EdgeEventKind, Graph, GraphError};
use rayon::prelude::*;

use crate::analysis::{
    analyze_schedule_reference, AnalysisTotals, CycleProfile, GraphChecker, PatchScratch,
    PatchStats, ScanChecker, ScheduleAnalysis,
};
use crate::dynamic::EventRepair;
use crate::scheduler::Scheduler;
use crate::schedulers::residue::{ResidueSchedule, RowChange};

pub mod persist;

pub use persist::{
    snapshot_dir, wal_sync, RecoverError, RecoveryReport, SnapshotStats, WalSync, WalWriter,
    SNAPSHOT_FILE, WAL_FILE, WAL_SYNC,
};

/// Default ceiling on the analytic touched-lane estimate above which
/// [`ProfileService::patch`] rebuilds instead of repairing in place.
/// Override at runtime with `FHG_PATCH_LIMIT`; see [`patch_limit`].
pub const PATCH_LIMIT: u64 = 65_536;

/// The patch-vs-rebuild threshold, decided once per process and cached in
/// a `OnceLock`: the `FHG_PATCH_LIMIT` environment variable when set (so
/// deployments can tune the crossover without recompiling), otherwise
/// [`PATCH_LIMIT`].
///
/// Same warn-and-fall-back contract as every other `FHG_*` knob: a
/// malformed value logs one warning to stderr and falls back to the
/// default — a long-lived serving process must not be killable by a typo
/// in its environment (pinned by the unit tests below).
pub fn patch_limit() -> u64 {
    static LIMIT: OnceLock<u64> = OnceLock::new();
    *LIMIT.get_or_init(|| parse_patch_limit(std::env::var("FHG_PATCH_LIMIT").ok().as_deref()))
}

/// Parses the `FHG_PATCH_LIMIT` override (factored out of [`patch_limit`]
/// so the fallback policy is testable despite the process-wide cache).
fn parse_patch_limit(raw: Option<&str>) -> u64 {
    match raw {
        None => PATCH_LIMIT,
        Some(raw) if raw.trim().is_empty() => PATCH_LIMIT,
        Some(raw) => match raw.trim().parse() {
            Ok(limit) => limit,
            Err(_) => {
                eprintln!(
                    "warning: FHG_PATCH_LIMIT={raw:?} is not a lane count; \
                     using the default {PATCH_LIMIT}"
                );
                PATCH_LIMIT
            }
        },
    }
}

/// Default number of warm slots one [`ProfileService::audit_step`] call
/// re-derives.  Override at runtime with `FHG_AUDIT_STEP`; see
/// [`audit_step_size`].
pub const AUDIT_STEP: usize = 8;

/// The per-call audit batch size, decided once per process and cached in
/// a `OnceLock`: the `FHG_AUDIT_STEP` environment variable when set (so
/// deployments can trade scrub latency against steady-state overhead
/// without recompiling), otherwise [`AUDIT_STEP`].
///
/// Same warn-and-fall-back contract as every other `FHG_*` knob: a
/// malformed value logs one warning to stderr and falls back to the
/// default (pinned by the unit tests below).
pub fn audit_step_size() -> usize {
    static STEP: OnceLock<usize> = OnceLock::new();
    *STEP.get_or_init(|| parse_audit_step(std::env::var("FHG_AUDIT_STEP").ok().as_deref()))
}

/// Parses the `FHG_AUDIT_STEP` override (factored out of
/// [`audit_step_size`] so the fallback policy is testable despite the
/// process-wide cache).
fn parse_audit_step(raw: Option<&str>) -> usize {
    match raw {
        None => AUDIT_STEP,
        Some(raw) if raw.trim().is_empty() => AUDIT_STEP,
        Some(raw) => match raw.trim().parse() {
            Ok(step) => step,
            Err(_) => {
                eprintln!(
                    "warning: FHG_AUDIT_STEP={raw:?} is not a slot count; \
                     using the default {AUDIT_STEP}"
                );
                AUDIT_STEP
            }
        },
    }
}

/// Why a scheduler could not be registered: the service refuses, with a
/// typed error, every input the closed-form profile cannot represent —
/// the preconditions that used to be unwraps and asserts deep in the
/// analysis engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// The scheduler exposes no perfectly periodic residue view
    /// ([`Scheduler::residue_schedule`] returned `None`), so no cycle
    /// profile exists to build.  Analyze it with the sweep engines instead
    /// ([`crate::analysis::analyze_schedule`]).
    NotPeriodic {
        /// The offending scheduler's [`Scheduler::name`].
        scheduler: String,
    },
    /// The schedule's cycle (possibly a saturated lcm) exceeds the profile
    /// budget [`CycleProfile::MAX_CYCLE`].
    CycleTooLong {
        /// The schedule's cycle length.
        cycle: u64,
        /// The budget it exceeded.
        max: u64,
    },
    /// The per-cycle attendance volume exceeds the profile memory budget
    /// [`CycleProfile::MAX_EVENTS`].
    AttendanceTooHeavy {
        /// The schedule's total attendance per cycle.
        attendance: u64,
        /// The budget it exceeded.
        max: u64,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::NotPeriodic { scheduler } => {
                write!(f, "scheduler {scheduler:?} exposes no periodic residue view")
            }
            RegisterError::CycleTooLong { cycle, max } => {
                write!(f, "cycle {cycle} exceeds the profile budget {max}")
            }
            RegisterError::AttendanceTooHeavy { attendance, max } => {
                write!(f, "attendance {attendance} per cycle exceeds the profile budget {max}")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Why a query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// No tenant with this id is registered.
    UnknownTenant(u64),
    /// The tenant is registered but its profile is cold (never built, or
    /// explicitly invalidated); call
    /// [`ProfileService::build_pending`] first.
    ProfileNotBuilt(u64),
    /// The tenant's slot is quarantined — a patch panic, a build-worker
    /// death or an audit mismatch marked its cached state untrustworthy —
    /// and the service refuses to serve a possibly-poisoned answer.  Call
    /// [`ProfileService::repair_quarantined`] to rebuild it cold.
    Quarantined(u64),
    /// The query worker died mid-derivation (a bug, or an injected
    /// `query.batch` fault).  The tenant's cached state is untouched;
    /// retrying is safe.
    Internal(u64),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTenant(t) => write!(f, "tenant {t} is not registered"),
            QueryError::ProfileNotBuilt(t) => {
                write!(f, "tenant {t}'s profile is cold; run build_pending first")
            }
            QueryError::Quarantined(t) => {
                write!(f, "tenant {t} is quarantined; run repair_quarantined first")
            }
            QueryError::Internal(t) => {
                write!(f, "the worker answering tenant {t} died; retrying is safe")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A point-in-time snapshot of the service's cache-activity counters —
/// see [`ProfileService::stats`] for what each counter means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from a warm profile.
    pub hits: u64,
    /// Queries refused (unknown tenant or cold profile) and patches aimed
    /// at unknown tenants.
    pub misses: u64,
    /// Edge events repaired in place by [`ProfileService::patch`].
    pub patches: u64,
    /// Full profile builds: every [`ProfileService::build_pending`] build
    /// plus every patch that fell back to a rebuild.
    pub rebuilds: u64,
    /// Warm profiles dropped: explicit invalidations and slots released by
    /// their last tenant.
    pub evictions: u64,
    /// Slots moved to [`SlotState::Quarantined`]: patch panics, build
    /// panics and audit mismatches.
    pub quarantines: u64,
}

/// A point-in-time snapshot of the background scrubber's counters — see
/// [`ProfileService::audit_step`].  Monotonic, like [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditStats {
    /// [`ProfileService::audit_step`] calls made.
    pub steps: u64,
    /// Warm slots re-derived through the reference sweep.
    pub audited: u64,
    /// Audited slots whose cached totals or verdict disagreed with the
    /// reference sweep.
    pub mismatches: u64,
    /// Slots the audit quarantined (equals `mismatches` — retained
    /// separately so a future lenient mode can diverge them).
    pub quarantined: u64,
}

/// The service's internal counters — atomic because the batch query front
/// counts from worker threads under a shared `&self`.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    patches: AtomicU64,
    rebuilds: AtomicU64,
    evictions: AtomicU64,
    quarantines: AtomicU64,
    audit_steps: AtomicU64,
    audited: AtomicU64,
    audit_mismatches: AtomicU64,
    audit_quarantined: AtomicU64,
}

/// What [`ProfileService::patch`] did with an edge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchOutcome {
    /// The cached profile was repaired in place; the stats say how much
    /// work that took.
    Patched(PatchStats),
    /// The repair was refused (cycle changed, verdict already broken) or
    /// the touched-lane estimate exceeded [`patch_limit`]; the profile was
    /// rebuilt from scratch instead — still warm, just not incremental.
    Rebuilt,
    /// The tenant's slot was cold: its graph and schedule content were
    /// updated, but there is no profile to repair until the next
    /// [`ProfileService::build_pending`].
    Cold,
}

/// Why [`ProfileService::patch`] could not apply an edge event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// No tenant with this id is registered.
    UnknownTenant(u64),
    /// The event does not apply to the tenant's graph (inserting an edge
    /// that exists, deleting one that doesn't, out-of-range endpoints) —
    /// the repair came from a different scheduler than the one registered.
    /// The slot is left untouched.
    Graph(GraphError),
    /// The mutated schedule would outgrow a profile budget (cycle length
    /// or attendance volume); the closed form cannot represent the
    /// post-event tenant, so the edge event and row changes were **rolled
    /// back** — the slot still serves its pre-event content, bitwise
    /// unchanged.
    BudgetExceeded(RegisterError),
    /// The tenant's slot is quarantined: either it already was when the
    /// patch arrived, or this very patch panicked past its commit point
    /// and the service quarantined it rather than serve a half-mutated
    /// profile.  The slot's (graph, schedule) content is post-event, so
    /// [`ProfileService::repair_quarantined`] converges with the caller's
    /// scheduler.
    Quarantined(u64),
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::UnknownTenant(t) => write!(f, "tenant {t} is not registered"),
            PatchError::Graph(e) => write!(f, "event does not apply to the tenant's graph: {e}"),
            PatchError::BudgetExceeded(e) => {
                write!(f, "mutated schedule would outgrow the profile budget: {e}")
            }
            PatchError::Quarantined(t) => {
                write!(f, "tenant {t} is quarantined; run repair_quarantined first")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// One windowed request: analyze tenant `tenant` over the holiday window
/// `[window.0, window.1)` (offsets relative to the schedule's first
/// holiday; `window.1 <= window.0` is the empty window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// The tenant whose schedule to analyze.
    pub tenant: u64,
    /// The half-open window `[t0, t1)`.
    pub window: (u64, u64),
}

/// A totals-only windowed response.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTotals {
    /// The originating request's tenant.
    pub tenant: u64,
    /// The originating request's window.
    pub window: (u64, u64),
    /// The whole-window aggregates.
    pub totals: AnalysisTotals,
}

/// A full per-node windowed response.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAnalysis {
    /// The originating request's tenant.
    pub tenant: u64,
    /// The originating request's window.
    pub window: (u64, u64),
    /// The per-node analysis of the window.
    pub analysis: ScheduleAnalysis,
}

/// Why a slot was quarantined — retained on the slot for observability
/// ([`ProfileService::quarantine_reason`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// [`ProfileService::patch`] panicked past its commit point; the
    /// cached profile may be half-mutated.
    PatchPanic,
    /// The slot's build worker died inside
    /// [`ProfileService::build_pending`].
    BuildPanic,
    /// [`ProfileService::audit_step`] re-derived the slot and its cached
    /// totals or independence verdict disagreed with the reference sweep.
    AuditMismatch,
    /// [`ProfileService::recover`] could not fully restore the slot: its
    /// profile section was torn or corrupt, or replaying one of its WAL
    /// frames faulted.  The slot's (graph, schedule) content is intact, so
    /// [`ProfileService::repair_quarantined`] rebuilds it cold.
    RecoveryMismatch,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::PatchPanic => write!(f, "a patch panicked past its commit point"),
            QuarantineReason::BuildPanic => write!(f, "the profile build worker died"),
            QuarantineReason::AuditMismatch => {
                write!(f, "the background audit found the cached profile diverged")
            }
            QuarantineReason::RecoveryMismatch => {
                write!(f, "crash recovery could not fully restore the cached profile")
            }
        }
    }
}

/// The lifecycle state of a cached slot — see the module docs for the
/// Building → Warm → Quarantined contract.
///
/// `Warm` carries its profile inline: slots already live behind the
/// service's map, nearly every slot is warm in steady state, and boxing
/// would put one more pointer chase on every query resolve.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum SlotState {
    /// Registered (or invalidated) but not yet built; the next
    /// [`ProfileService::build_pending`] builds it.
    Building,
    /// A verified profile is cached and serving.
    Warm(CycleProfile),
    /// The cached state can no longer be trusted; queries are refused
    /// until [`ProfileService::repair_quarantined`] rebuilds the slot.
    Quarantined(QuarantineReason),
}

/// One cached (graph, schedule) pair and its profile, shared by every
/// tenant whose content hashes to the same key.
struct ProfileSlot {
    graph: Graph,
    view: ResidueSchedule,
    start: u64,
    name: String,
    /// Where the slot is in the Building → Warm → Quarantined lifecycle.
    /// The (graph, view) content above is always consistent regardless of
    /// state — quarantine poisons only the cached profile.
    state: SlotState,
    /// How many registered tenants point at this slot.
    refs: usize,
    /// Whether this slot was detached for mutation by
    /// [`ProfileService::patch`]: its key is synthetic (never a content
    /// hash), it belongs to exactly one tenant, and registrations can
    /// never alias it.
    private: bool,
}

/// The multi-tenant profile cache and batch query front — see the module
/// docs for the cache keying and invalidation contract.
#[derive(Default)]
pub struct ProfileService {
    /// tenant id → schedule key.
    tenants: HashMap<u64, u64>,
    /// schedule key → cached slot.
    slots: HashMap<u64, ProfileSlot>,
    /// Cache-activity counters, snapshot by [`ProfileService::stats`].
    counters: Counters,
    /// Reusable patch buffers; after warm-up a patch allocates nothing.
    patch_scratch: PatchScratch,
    /// Next candidate synthetic key for detached slots (collision-checked
    /// against live keys before use).
    next_private_key: u64,
    /// The last schedule key the background audit visited; each
    /// [`ProfileService::audit_step`] resumes after it (round-robin by
    /// key order), so the scrubber covers every warm slot over time.
    audit_cursor: u64,
}

impl ProfileService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) tenant `tenant` with its conflict graph
    /// and scheduler, returning the schedule key the tenant was bound to.
    /// Validates every profile precondition up front — periodicity, the
    /// cycle budget, the attendance budget — and returns a typed
    /// [`RegisterError`] instead of crashing later.  The profile itself is
    /// *not* built here: registration marks the key pending and
    /// [`ProfileService::build_pending`] builds all pending keys sharded
    /// across the worker pool.  Re-registering a tenant whose content
    /// changed rebinds it (the old key is dropped with its last tenant);
    /// re-registering identical content is a no-op that keeps any warm
    /// profile.
    pub fn register<S: Scheduler + ?Sized>(
        &mut self,
        tenant: u64,
        graph: &Graph,
        scheduler: &S,
    ) -> Result<u64, RegisterError> {
        let Some(view) = scheduler.residue_schedule() else {
            return Err(RegisterError::NotPeriodic { scheduler: scheduler.name().to_string() });
        };
        let cycle = view.cycle();
        if cycle > CycleProfile::MAX_CYCLE {
            return Err(RegisterError::CycleTooLong { cycle, max: CycleProfile::MAX_CYCLE });
        }
        let attendance = view.attendance_per_cycle();
        if attendance > CycleProfile::MAX_EVENTS {
            return Err(RegisterError::AttendanceTooHeavy {
                attendance,
                max: CycleProfile::MAX_EVENTS,
            });
        }
        let start = scheduler.first_holiday();
        let key = schedule_key(graph, view, start);
        match self.tenants.get(&tenant) {
            Some(&old) if old == key => return Ok(key),
            Some(&old) => self.release_key(old),
            None => {}
        }
        self.tenants.insert(tenant, key);
        self.slots.entry(key).and_modify(|slot| slot.refs += 1).or_insert_with(|| ProfileSlot {
            graph: graph.clone(),
            view: view.clone(),
            start,
            name: scheduler.name().to_string(),
            state: SlotState::Building,
            refs: 1,
            private: false,
        });
        Ok(key)
    }

    /// Unregisters a tenant; its schedule key (and cached profile) is
    /// dropped when the last tenant sharing it leaves.  Returns whether the
    /// tenant was registered.
    pub fn remove(&mut self, tenant: u64) -> bool {
        match self.tenants.remove(&tenant) {
            Some(key) => {
                self.release_key(key);
                true
            }
            None => false,
        }
    }

    fn release_key(&mut self, key: u64) {
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.refs -= 1;
            if slot.refs == 0 {
                if let Some(slot) = self.slots.remove(&key) {
                    if matches!(slot.state, SlotState::Warm(_)) {
                        self.counters.evictions.fetch_add(1, Relaxed);
                    }
                }
            }
        }
    }

    /// Explicitly invalidates a tenant's cached profile — the *schedule
    /// key* goes cold, so every tenant sharing it rebuilds on the next
    /// [`ProfileService::build_pending`].  Returns whether a warm profile
    /// was actually dropped.  Quarantined slots are untouched: they leave
    /// quarantine only through
    /// [`repair_quarantined`](ProfileService::repair_quarantined).
    pub fn invalidate(&mut self, tenant: u64) -> bool {
        let Some(&key) = self.tenants.get(&tenant) else {
            return false;
        };
        match self.slots.get_mut(&key) {
            Some(slot) if matches!(slot.state, SlotState::Warm(_)) => {
                slot.state = SlotState::Building;
                self.counters.evictions.fetch_add(1, Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Drops every cached profile (registrations stay; quarantined slots
    /// are untouched, as in [`invalidate`](ProfileService::invalidate)).
    pub fn invalidate_all(&mut self) {
        for slot in self.slots.values_mut() {
            if matches!(slot.state, SlotState::Warm(_)) {
                slot.state = SlotState::Building;
                self.counters.evictions.fetch_add(1, Relaxed);
            }
        }
    }

    /// Builds every cold ([`SlotState::Building`]) profile, sharded across
    /// the persistent worker pool (each build's internal cycle walk shards
    /// further — the nesting is deadlock-free because the pool's caller
    /// always participates).  Returns how many profiles were built.
    /// Idempotent: warm profiles are untouched, so the service stays
    /// bitwise-stable across calls.
    ///
    /// Crash-only: each build job runs isolated — a worker that panics
    /// (a bug, or an injected `build.slot` fault) poisons **only its own
    /// slot**, which is quarantined ([`QuarantineReason::BuildPanic`])
    /// while every other slot finishes warm; the panic never unwinds into
    /// the caller.
    pub fn build_pending(&mut self) -> usize {
        let pending: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, slot)| matches!(slot.state, SlotState::Building))
            .map(|(&key, _)| key)
            .collect();
        let mut building: Vec<(u64, ProfileSlot)> = pending
            .into_iter()
            .map(|key| {
                let slot = self.slots.remove(&key).expect("pending key was just enumerated");
                (key, slot)
            })
            .collect();
        let outcome = building.par_iter_mut().for_each_isolated(|(_, slot)| {
            crate::fail_point!("build.slot");
            let checker = GraphChecker::new(&slot.graph);
            slot.state = SlotState::Warm(CycleProfile::build(
                &slot.view,
                slot.start,
                slot.graph.node_count(),
                &checker,
            ));
        });
        for poison in &outcome.panics {
            building[poison.index].1.state = SlotState::Quarantined(QuarantineReason::BuildPanic);
        }
        let built = building.len() - outcome.panics.len();
        self.counters.quarantines.fetch_add(outcome.panics.len() as u64, Relaxed);
        for (key, slot) in building {
            self.slots.insert(key, slot);
        }
        self.counters.rebuilds.fetch_add(built as u64, Relaxed);
        built
    }

    /// Releases every quarantined slot back to [`SlotState::Building`] and
    /// rebuilds it cold from its (graph, schedule) content — which is
    /// always consistent, so the rebuilt profile converges with the
    /// tenant's live scheduler.  Returns how many slots were released.
    /// (The rebuild goes through [`build_pending`](ProfileService::build_pending),
    /// so any independently-cold slots build too; if a fault schedule is
    /// still injecting build panics the rebuild may re-quarantine, which
    /// the next repair call retries — crash-only all the way down.)
    pub fn repair_quarantined(&mut self) -> usize {
        let mut released = 0;
        for slot in self.slots.values_mut() {
            if matches!(slot.state, SlotState::Quarantined(_)) {
                slot.state = SlotState::Building;
                released += 1;
            }
        }
        if released > 0 {
            self.build_pending();
        }
        released
    }

    /// Applies one dynamic edge event to `tenant`'s cached profile **in
    /// place** — the serving face of the incremental repair plane.  The
    /// caller drives its scheduler first
    /// ([`crate::dynamic::DynamicColorBound::apply_event`]) and hands the
    /// returned [`EventRepair`] here; the service then:
    ///
    /// 1. **detaches** the tenant onto a private copy-on-write slot if its
    ///    profile is shared (other tenants keep the unmutated original and
    ///    stay warm), or moves the slot off its content key if exclusive
    ///    (so later registrations of the *old* content cannot alias the
    ///    mutated slot);
    /// 2. mirrors the edge event onto the slot's graph and the row changes
    ///    onto its residue view;
    /// 3. repairs the cached [`CycleProfile`] through
    ///    [`CycleProfile::patch`] — verification runs against the live
    ///    graph through a [`ScanChecker`], so no adjacency layout is
    ///    rebuilt per event — **unless** the analytic touched-lane
    ///    estimate exceeds the [`patch_limit`] knob (`FHG_PATCH_LIMIT`) or
    ///    the patch is refused (cycle changed, verdict already broken), in
    ///    which case it degrades to a full rebuild, still in this call.
    ///
    /// Cold slots absorb the content change and stay cold
    /// ([`PatchOutcome::Cold`]).  A mutated schedule that would outgrow a
    /// profile budget is **rolled back** — edge event and rows restored,
    /// the slot keeps serving its pre-event content — with a typed
    /// [`PatchError::BudgetExceeded`].  A panic past the graph edit is
    /// caught and quarantines the tenant ([`PatchError::Quarantined`])
    /// instead of unwinding into the caller; its content stays post-event
    /// so [`repair_quarantined`](ProfileService::repair_quarantined)
    /// converges with the caller's scheduler.  After warm-up, the in-place
    /// path performs zero heap allocations (proved by
    /// `tests/zero_alloc.rs`).
    pub fn patch(&mut self, tenant: u64, repair: &EventRepair) -> Result<PatchOutcome, PatchError> {
        let Some(&key) = self.tenants.get(&tenant) else {
            self.counters.misses.fetch_add(1, Relaxed);
            return Err(PatchError::UnknownTenant(tenant));
        };
        let key = self.detach_for_write(tenant, key);
        let Self { slots, counters, patch_scratch, .. } = self;
        let slot = slots.get_mut(&key).expect("detach_for_write placed the slot");

        // Prepare: mirror the event onto the slot's private graph copy
        // first.  A failure here means the repair came from a scheduler
        // that is not this tenant's registered content, and leaves the
        // slot untouched.
        let event = repair.event;
        match event.kind {
            EdgeEventKind::Insert => slot.graph.add_edge(event.u, event.v),
            EdgeEventKind::Delete => slot.graph.remove_edge(event.u, event.v),
        }
        .map_err(PatchError::Graph)?;

        // Everything past the graph edit runs under `catch_unwind`: a
        // panic in the row application, the profile repair or the rebuild
        // (injected via `patch.after_rows` / `profile.patch.*`, or a real
        // bug) must not unwind into the caller, and must not leave a
        // half-mutated profile serving — the slot is quarantined instead.
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            Self::patch_in_place(&mut *slot, counters, patch_scratch, tenant, repair)
        }));
        match attempt {
            Ok(result) => result,
            Err(_) => {
                slot.state = SlotState::Quarantined(QuarantineReason::PatchPanic);
                counters.quarantines.fetch_add(1, Relaxed);
                Err(PatchError::Quarantined(tenant))
            }
        }
    }

    /// The validate + commit phases of [`ProfileService::patch`], run
    /// under its `catch_unwind` with the graph edit already applied.
    fn patch_in_place(
        slot: &mut ProfileSlot,
        counters: &Counters,
        patch_scratch: &mut PatchScratch,
        tenant: u64,
        repair: &EventRepair,
    ) -> Result<PatchOutcome, PatchError> {
        let event = repair.event;
        for change in repair.row_changes() {
            slot.view.apply_row(change);
        }
        crate::fail_point!("patch.after_rows");

        // A quarantined slot still absorbs the content change (so the
        // eventual cold rebuild converges with the caller's scheduler),
        // but its cached profile stays untrusted.
        if matches!(slot.state, SlotState::Quarantined(_)) {
            return Err(PatchError::Quarantined(tenant));
        }
        if matches!(slot.state, SlotState::Building) {
            return Ok(PatchOutcome::Cold);
        }

        // Validate: the mutated schedule may have outgrown the closed form
        // (a recolored node with a longer period stretches the cycle) —
        // the same budgets registration enforces, re-checked before any
        // rebuild could assert deep in the build.  A violation rolls the
        // event back: rows restored via the inverse changes, the edge
        // edit inverted, and the slot keeps serving pre-event answers.
        let cycle = slot.view.cycle();
        let attendance = slot.view.attendance_per_cycle();
        let violation = if cycle > CycleProfile::MAX_CYCLE {
            Some(RegisterError::CycleTooLong { cycle, max: CycleProfile::MAX_CYCLE })
        } else if attendance > CycleProfile::MAX_EVENTS {
            Some(RegisterError::AttendanceTooHeavy { attendance, max: CycleProfile::MAX_EVENTS })
        } else {
            None
        };
        if let Some(violation) = violation {
            for change in repair.row_changes().iter().rev() {
                slot.view.apply_row(&inverse_row(change));
            }
            match event.kind {
                EdgeEventKind::Insert => slot.graph.remove_edge(event.u, event.v),
                EdgeEventKind::Delete => slot.graph.add_edge(event.u, event.v),
            }
            .expect("inverting a just-applied edge event");
            return Err(PatchError::BudgetExceeded(violation));
        }

        // The analytic touched-lane estimate: offsets rewritten per row
        // change (old progression out, new progression in) plus, for an
        // insert, an upper bound on the CRT co-attendance classes.  Purely
        // arithmetic — computed before deciding to patch, so a pathological
        // event (a hub recoloring onto modulus 1) pays a rebuild instead of
        // a patch that is no cheaper.
        let mut touched: u64 = repair
            .row_changes()
            .iter()
            .map(|c| cycle / c.old_modulus.max(1) + cycle / c.new_modulus)
            .sum();
        if event.kind == EdgeEventKind::Insert {
            let (mu, mv) = (slot.view.modulus(event.u), slot.view.modulus(event.v));
            touched += cycle / mu.max(mv);
        }

        if touched <= patch_limit() {
            if let SlotState::Warm(profile) = &mut slot.state {
                let scan = ScanChecker::new(&slot.graph);
                let inserted = (event.kind == EdgeEventKind::Insert).then_some((event.u, event.v));
                if let Ok(stats) =
                    profile.patch(&slot.view, repair.row_changes(), inserted, &scan, patch_scratch)
                {
                    counters.patches.fetch_add(1, Relaxed);
                    return Ok(PatchOutcome::Patched(stats));
                }
            }
        }
        let checker = GraphChecker::new(&slot.graph);
        slot.state = SlotState::Warm(CycleProfile::build(
            &slot.view,
            slot.start,
            slot.graph.node_count(),
            &checker,
        ));
        counters.rebuilds.fetch_add(1, Relaxed);
        Ok(PatchOutcome::Rebuilt)
    }

    /// Rebinds `tenant` to a slot that is safe to mutate: an
    /// already-private slot is returned as-is; a shared slot is cloned
    /// copy-on-write under a fresh synthetic key (the other tenants keep
    /// the original, warm); an exclusively-held content-keyed slot is
    /// *moved* to a synthetic key, so a later registration of the old
    /// content starts a fresh slot instead of aliasing the mutated one.
    fn detach_for_write(&mut self, tenant: u64, key: u64) -> u64 {
        let slot = self.slots.get(&key).expect("tenant keys always resolve");
        if slot.private {
            return key;
        }
        let mut fresh = self.next_private_key;
        while self.slots.contains_key(&fresh) {
            fresh = fresh.wrapping_add(1);
        }
        self.next_private_key = fresh.wrapping_add(1);
        let detached = if slot.refs == 1 {
            let mut slot = self.slots.remove(&key).expect("just resolved");
            slot.private = true;
            slot
        } else {
            let shared = self.slots.get_mut(&key).expect("just resolved");
            shared.refs -= 1;
            ProfileSlot {
                graph: shared.graph.clone(),
                view: shared.view.clone(),
                start: shared.start,
                name: shared.name.clone(),
                state: shared.state.clone(),
                refs: 1,
                private: true,
            }
        };
        self.slots.insert(fresh, detached);
        self.tenants.insert(tenant, fresh);
        fresh
    }

    /// One amortized scrub step of the background integrity audit:
    /// re-derives up to `k` warm slots (round-robin by schedule key,
    /// resuming after the previous step's cursor) through the sequential
    /// reference sweep — [`analyze_schedule_reference`] over one full
    /// cycle, with a fresh [`GraphChecker`], sharing no scratch, checker
    /// or code path with the serving fast paths — and compares totals and
    /// independence verdict against the cached profile's closed form.  A
    /// disagreement quarantines the slot
    /// ([`QuarantineReason::AuditMismatch`]): this is the plane that
    /// catches *silent* corruption (an injected `checker.batch` fault, a
    /// lane poisoned by a bug) that typed errors and panic quarantine
    /// cannot see.  Returns how many slots were audited; tune the per-call
    /// batch with [`audit_step_size`] (`FHG_AUDIT_STEP`).
    pub fn audit_step(&mut self, k: usize) -> usize {
        self.counters.audit_steps.fetch_add(1, Relaxed);
        let mut keys: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, slot)| matches!(slot.state, SlotState::Warm(_)))
            .map(|(&key, _)| key)
            .collect();
        if keys.is_empty() || k == 0 {
            return 0;
        }
        keys.sort_unstable();
        let resume = keys.partition_point(|&key| key <= self.audit_cursor);
        let mut audited = 0;
        for i in 0..keys.len().min(k) {
            let key = keys[(resume + i) % keys.len()];
            self.audit_cursor = key;
            let slot = self.slots.get_mut(&key).expect("enumerated above");
            let SlotState::Warm(profile) = &slot.state else { unreachable!("filtered warm") };
            let cycle = profile.cycle();
            let mut sweep = ViewScheduler { view: &slot.view, start: slot.start };
            let reference = analyze_schedule_reference(&slot.graph, &mut sweep, cycle);
            let clean = profile.derive_window_totals(0, cycle) == reference.totals()
                && profile.all_classes_independent() == reference.all_happy_sets_independent;
            audited += 1;
            self.counters.audited.fetch_add(1, Relaxed);
            if !clean {
                slot.state = SlotState::Quarantined(QuarantineReason::AuditMismatch);
                self.counters.audit_mismatches.fetch_add(1, Relaxed);
                self.counters.audit_quarantined.fetch_add(1, Relaxed);
                self.counters.quarantines.fetch_add(1, Relaxed);
            }
        }
        audited
    }

    /// [`audit_step`](Self::audit_step) with the environment-tuned batch
    /// size: `FHG_AUDIT_STEP` slots per tick ([`audit_step_size`],
    /// default [`AUDIT_STEP`]; `FHG_AUDIT_STEP=0` turns the tick into a
    /// no-op).  The form a serving loop calls on its idle timer.
    pub fn audit_tick(&mut self) -> usize {
        self.audit_step(audit_step_size())
    }

    /// A snapshot of the background scrubber's counters: **steps** taken,
    /// slots **audited**, **mismatches** found and slots **quarantined**
    /// by the audit.  Monotonic, like [`ProfileService::stats`].
    pub fn audit_stats(&self) -> AuditStats {
        AuditStats {
            steps: self.counters.audit_steps.load(Relaxed),
            audited: self.counters.audited.load(Relaxed),
            mismatches: self.counters.audit_mismatches.load(Relaxed),
            quarantined: self.counters.audit_quarantined.load(Relaxed),
        }
    }

    /// A snapshot of the cache-activity counters: query **hits** against
    /// warm profiles vs **misses** (unknown tenants, cold or quarantined
    /// profiles), in-place **patches** vs full **rebuilds** (pending
    /// builds and patch fallbacks), **evictions** of warm profiles
    /// (invalidations, released slots) and **quarantines** (patch panics,
    /// build panics, audit mismatches).  Counters are monotonic over the
    /// service's lifetime.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Relaxed),
            misses: self.counters.misses.load(Relaxed),
            patches: self.counters.patches.load(Relaxed),
            rebuilds: self.counters.rebuilds.load(Relaxed),
            evictions: self.counters.evictions.load(Relaxed),
            quarantines: self.counters.quarantines.load(Relaxed),
        }
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Number of distinct schedule keys currently cached (warm or cold).
    pub fn key_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of warm (built) profiles.
    pub fn warm_count(&self) -> usize {
        self.slots.values().filter(|slot| matches!(slot.state, SlotState::Warm(_))).count()
    }

    /// Number of quarantined slots awaiting
    /// [`repair_quarantined`](ProfileService::repair_quarantined).
    pub fn quarantined_count(&self) -> usize {
        self.slots.values().filter(|slot| matches!(slot.state, SlotState::Quarantined(_))).count()
    }

    /// Why `tenant`'s slot is quarantined, if it is.
    pub fn quarantine_reason(&self, tenant: u64) -> Option<QuarantineReason> {
        let key = self.tenants.get(&tenant)?;
        match self.slots.get(key)?.state {
            SlotState::Quarantined(reason) => Some(reason),
            _ => None,
        }
    }

    /// The warm profile serving `tenant`, if any.
    pub fn profile(&self, tenant: u64) -> Option<&CycleProfile> {
        let key = self.tenants.get(&tenant)?;
        match &self.slots.get(key)?.state {
            SlotState::Warm(profile) => Some(profile),
            _ => None,
        }
    }

    fn slot_of(&self, tenant: u64) -> Result<(&ProfileSlot, &CycleProfile), QueryError> {
        let key = self.tenants.get(&tenant).ok_or(QueryError::UnknownTenant(tenant))?;
        let slot = self.slots.get(key).ok_or(QueryError::UnknownTenant(tenant))?;
        match &slot.state {
            SlotState::Warm(profile) => Ok((slot, profile)),
            SlotState::Building => Err(QueryError::ProfileNotBuilt(tenant)),
            SlotState::Quarantined(_) => Err(QueryError::Quarantined(tenant)),
        }
    }

    /// Answers one totals-only windowed query — the hot serving shape:
    /// after warm-up this performs zero heap allocations (thread-local
    /// derivation scratch; proved by `tests/zero_alloc.rs`).
    pub fn query_totals(
        &self,
        tenant: u64,
        t0: u64,
        t1: u64,
    ) -> Result<AnalysisTotals, QueryError> {
        let (_, profile) = self.counted(self.slot_of(tenant))?;
        Ok(profile.derive_window_totals(t0, t1))
    }

    /// Answers one full per-node windowed query (the output allocation is
    /// proportional to the node count, never the window length).
    pub fn query(&self, tenant: u64, t0: u64, t1: u64) -> Result<ScheduleAnalysis, QueryError> {
        let (slot, profile) = self.counted(self.slot_of(tenant))?;
        Ok(profile.derive_window(&slot.name, &slot.graph, t0, t1))
    }

    /// Counts a slot lookup as a cache hit or miss (atomically — the batch
    /// front resolves slots from worker threads under a shared `&self`).
    fn counted<T>(&self, resolved: Result<T, QueryError>) -> Result<T, QueryError> {
        match &resolved {
            Ok(_) => self.counters.hits.fetch_add(1, Relaxed),
            Err(_) => self.counters.misses.fetch_add(1, Relaxed),
        };
        resolved
    }

    /// The batch front, totals flavor: answers every request, sharded
    /// across the worker pool, results in request order.  Individual
    /// failures (unknown tenant, cold or quarantined profile) fail their
    /// own slot only, and so does a worker that *dies*: each request runs
    /// under `catch_unwind`, so a panic mid-derivation (injected via the
    /// `query.batch` failpoint, or a real bug) becomes that request's
    /// [`QueryError::Internal`] instead of unwinding into the caller.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<WindowTotals, QueryError>> {
        queries
            .par_iter()
            .map(|q| {
                catch_unwind(AssertUnwindSafe(|| {
                    crate::fail_point!("query.batch", return Err(QueryError::Internal(q.tenant)));
                    self.query_totals(q.tenant, q.window.0, q.window.1)
                }))
                .unwrap_or(Err(QueryError::Internal(q.tenant)))
                .map(|totals| WindowTotals {
                    tenant: q.tenant,
                    window: q.window,
                    totals,
                })
            })
            .collect()
    }

    /// The batch front, full-analysis flavor — same per-request panic
    /// containment as [`query_batch`](ProfileService::query_batch).
    pub fn query_batch_full(&self, queries: &[Query]) -> Vec<Result<WindowAnalysis, QueryError>> {
        queries
            .par_iter()
            .map(|q| {
                catch_unwind(AssertUnwindSafe(|| {
                    crate::fail_point!("query.batch", return Err(QueryError::Internal(q.tenant)));
                    self.query(q.tenant, q.window.0, q.window.1)
                }))
                .unwrap_or(Err(QueryError::Internal(q.tenant)))
                .map(|analysis| WindowAnalysis {
                    tenant: q.tenant,
                    window: q.window,
                    analysis,
                })
            })
            .collect()
    }
}

/// The inverse of a residue-row change: applying it after `change` (to
/// the same view) restores the pre-change row — the rollback arm of the
/// transactional patch.
fn inverse_row(change: &RowChange) -> RowChange {
    RowChange {
        node: change.node,
        old_slot: change.new_slot,
        old_modulus: change.new_modulus,
        new_slot: change.old_slot,
        new_modulus: change.old_modulus,
    }
}

/// A minimal scheduler over a borrowed residue view, so the background
/// audit can drive [`analyze_schedule_reference`] without the tenant's
/// original scheduler object (the service only keeps the view).
struct ViewScheduler<'a> {
    view: &'a ResidueSchedule,
    start: u64,
}

impl Scheduler for ViewScheduler<'_> {
    fn node_count(&self) -> usize {
        self.view.node_count()
    }
    fn fill_happy_set(&mut self, t: u64, out: &mut crate::HappySet) {
        self.view.fill(t, out);
    }
    fn first_holiday(&self) -> u64 {
        self.start
    }
    fn name(&self) -> &'static str {
        "audit-view"
    }
    fn is_periodic(&self) -> bool {
        true
    }
    fn period(&self, p: fhg_graph::NodeId) -> Option<u64> {
        Some(self.view.modulus(p))
    }
    fn unhappiness_bound(&self, _p: fhg_graph::NodeId) -> Option<u64> {
        None
    }
    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        Some(self.view)
    }
}

/// 64-bit FNV-1a accumulator for the schedule content key.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn put(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The schedule content key: FNV-1a over the residue assignment
/// (`(slot, modulus)` per node, plus the first holiday) *and* the conflict
/// graph's adjacency — two tenants share a profile only when both the
/// schedule and the graph match, because the independence verdict baked
/// into a profile depends on the graph.
fn schedule_key(graph: &Graph, view: &ResidueSchedule, start: u64) -> u64 {
    let mut h = Fnv::new();
    h.put(start);
    h.put(view.node_count() as u64);
    for p in 0..view.node_count() {
        h.put(view.slot(p));
        h.put(view.modulus(p));
    }
    h.put(graph.node_count() as u64);
    for u in graph.nodes() {
        let row = graph.neighbors(u);
        h.put(row.len() as u64);
        for &v in row {
            h.put(v as u64);
        }
    }
    h.0
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A scheduler pinned to an explicit residue view, for staging slots
    /// the maintained schedulers would never produce.  Shared by this
    /// module's tests and `persist`'s.
    pub(crate) struct Fixed(pub(crate) ResidueSchedule);

    impl Scheduler for Fixed {
        fn node_count(&self) -> usize {
            self.0.node_count()
        }
        fn fill_happy_set(&mut self, t: u64, out: &mut crate::HappySet) {
            self.0.fill(t, out);
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn is_periodic(&self) -> bool {
            true
        }
        fn period(&self, p: fhg_graph::NodeId) -> Option<u64> {
            Some(self.0.modulus(p))
        }
        fn unhappiness_bound(&self, _p: fhg_graph::NodeId) -> Option<u64> {
            None
        }
        fn residue_schedule(&self) -> Option<&ResidueSchedule> {
            Some(&self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::Fixed;
    use super::*;
    use crate::analysis::analyze_schedule_reference;
    use crate::schedulers::{FirstComeFirstGrab, PeriodicDegreeBound};
    use fhg_graph::generators::erdos_renyi;

    #[test]
    fn non_periodic_schedulers_are_a_typed_error_not_a_crash() {
        let g = erdos_renyi(16, 0.2, 7);
        let mut service = ProfileService::new();
        let dynamic = FirstComeFirstGrab::new(&g, 42);
        let err = service.register(1, &g, &dynamic).unwrap_err();
        assert!(matches!(err, RegisterError::NotPeriodic { .. }), "{err}");
        assert_eq!(service.tenant_count(), 0, "failed registrations leave no residue");
    }

    #[test]
    fn over_budget_cycles_are_rejected_up_front() {
        // Huge coprime moduli: the lcm saturates far past MAX_CYCLE.
        let g = Graph::new(3);
        let view = ResidueSchedule::scan_only(
            vec![0, 1, 2],
            vec![(1 << 21) + 1, (1 << 21) - 1, (1 << 20) + 3],
        );
        let mut service = ProfileService::new();
        let err = service.register(9, &g, &Fixed(view)).unwrap_err();
        assert!(matches!(err, RegisterError::CycleTooLong { .. }), "{err}");
    }

    #[test]
    fn identical_content_shares_one_profile_and_invalidation_is_explicit() {
        let g = erdos_renyi(24, 0.15, 3);
        let s = PeriodicDegreeBound::new(&g);
        let mut service = ProfileService::new();
        let k1 = service.register(1, &g, &s).unwrap();
        let k2 = service.register(2, &g, &s).unwrap();
        assert_eq!(k1, k2, "identical content hashes to one key");
        assert_eq!(service.key_count(), 1);
        assert_eq!(service.tenant_count(), 2);

        assert_eq!(service.query_totals(1, 0, 10), Err(QueryError::ProfileNotBuilt(1)));
        assert_eq!(service.build_pending(), 1, "one shared build for both tenants");
        assert_eq!(service.build_pending(), 0, "idempotent");
        assert_eq!(service.warm_count(), 1);

        let a = service.query_totals(1, 3, 40).unwrap();
        let b = service.query_totals(2, 3, 40).unwrap();
        assert_eq!(a, b);
        assert_eq!(service.query_totals(3, 0, 10), Err(QueryError::UnknownTenant(3)));

        assert!(service.invalidate(1), "warm profile dropped");
        assert!(!service.invalidate(1), "already cold");
        assert_eq!(service.query_totals(2, 3, 40), Err(QueryError::ProfileNotBuilt(2)));
        assert_eq!(service.build_pending(), 1);
        assert_eq!(service.query_totals(2, 3, 40).unwrap(), a, "rebuild is bitwise-stable");

        assert!(service.remove(1));
        assert_eq!(service.key_count(), 1, "tenant 2 still holds the key");
        assert!(service.remove(2));
        assert_eq!(service.key_count(), 0, "last tenant drops the slot");
    }

    #[test]
    fn served_windows_match_the_reference_sweep() {
        let g = erdos_renyi(32, 0.12, 5);
        let s = PeriodicDegreeBound::new(&g);
        let mut service = ProfileService::new();
        service.register(7, &g, &s).unwrap();
        service.build_pending();
        let cycle = service.profile(7).unwrap().cycle();

        // Reference over [0, t1): the sweep from the schedule itself.
        let t1 = 2 * cycle + 3;
        let mut fresh = PeriodicDegreeBound::new(&g);
        let reference = analyze_schedule_reference(&g, &mut fresh, t1);
        let served = service.query(7, 0, t1).unwrap();
        assert_eq!(served.totals(), reference.totals());

        // The batch front agrees with the single-query path, slot by slot.
        let queries: Vec<Query> = (0..20)
            .map(|i| Query { tenant: 7, window: (i * 3, i * 3 + 1 + i % (2 * cycle)) })
            .chain([Query { tenant: 99, window: (0, 5) }])
            .collect();
        let batch = service.query_batch(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            match r {
                Ok(w) => {
                    assert_eq!(w.tenant, q.tenant);
                    assert_eq!(
                        w.totals,
                        service.query_totals(q.tenant, q.window.0, q.window.1).unwrap()
                    );
                }
                Err(e) => assert_eq!(*e, QueryError::UnknownTenant(99)),
            }
        }
        let full = service.query_batch_full(&queries[..4]);
        for (q, r) in queries.iter().zip(&full) {
            let w = r.as_ref().unwrap();
            assert_eq!(
                w.analysis.totals(),
                service.query_totals(q.tenant, q.window.0, q.window.1).unwrap()
            );
        }
    }

    #[test]
    fn patch_limit_override_falls_back_instead_of_panicking() {
        // Same contract as FHG_DENSE_LIMIT and FHG_KERNEL: garbage in the
        // environment warns and falls back, never kills the server.
        assert_eq!(parse_patch_limit(None), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("  ")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("garbage")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("-7")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("1e6")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("0")), 0, "zero forces rebuild-always");
        assert_eq!(parse_patch_limit(Some("1024")), 1024);
        assert_eq!(parse_patch_limit(Some(" 42 ")), 42, "whitespace is trimmed");
    }

    #[test]
    fn shared_profiles_survive_removal_and_invalidation_of_a_cotenant() {
        // Two tenants share one profile; removing one and bouncing the
        // other through an invalidate/rebuild must keep the survivor's
        // identity and answers bitwise-stable.
        let g = erdos_renyi(28, 0.14, 13);
        let s = PeriodicDegreeBound::new(&g);
        let mut service = ProfileService::new();
        let k1 = service.register(1, &g, &s).unwrap();
        let k2 = service.register(2, &g, &s).unwrap();
        assert_eq!(k1, k2, "identical content shares one slot");
        assert_eq!(service.build_pending(), 1);

        let cycle = service.profile(1).unwrap().cycle();
        let window = (3, 4 * cycle + 1);
        let before = service.query(2, window.0, window.1).unwrap();
        let shared: *const CycleProfile = service.profile(2).unwrap();
        assert_eq!(shared, service.profile(1).unwrap() as *const _, "one profile, two tenants");

        assert!(service.remove(1), "tenant 1 leaves");
        assert_eq!(service.tenant_count(), 1);
        assert_eq!(service.key_count(), 1, "tenant 2 still holds the slot");
        assert_eq!(
            service.profile(2).unwrap() as *const CycleProfile,
            shared,
            "removal of a cotenant must not disturb the survivor's profile"
        );

        assert!(service.invalidate(2), "survivor goes cold on request");
        assert_eq!(service.query(2, window.0, window.1), Err(QueryError::ProfileNotBuilt(2)));
        assert_eq!(service.build_pending(), 1);
        let after = service.query(2, window.0, window.1).unwrap();
        assert_eq!(after, before, "rebuild is bitwise-stable");
        let stats = service.stats();
        assert_eq!(stats.evictions, 1, "one explicit invalidation");
        assert_eq!(stats.rebuilds, 2, "initial build + rebuild");
        assert_eq!(stats.misses, 1, "the one cold query");
    }

    #[test]
    fn patch_repairs_in_place_and_detaches_shared_slots() {
        use crate::dynamic::DynamicColorBound;

        let g = erdos_renyi(40, 0.1, 21);
        let mut sched = DynamicColorBound::new(&g);
        let mut service = ProfileService::new();
        service.register(1, &g, &sched).unwrap();
        service.register(2, &g, &sched).unwrap();
        assert_eq!(service.build_pending(), 1);
        let cycle = service.profile(1).unwrap().cycle();
        let untouched = service.query(2, 0, 3 * cycle).unwrap();

        // Drive a few events through tenant 1; tenant 2 keeps the original.
        let mut patched = 0u64;
        let mut events = 0u64;
        let mut last_repair = None;
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 4), (0, 1)] {
            let kind = if sched.graph().has_edge(u, v) {
                EdgeEventKind::Delete
            } else {
                EdgeEventKind::Insert
            };
            let event = fhg_graph::EdgeEvent { kind, u, v, holiday: events };
            let repair = sched.apply_event(event).unwrap();
            match service.patch(1, &repair).unwrap() {
                PatchOutcome::Patched(_) => patched += 1,
                PatchOutcome::Rebuilt => {}
                PatchOutcome::Cold => panic!("slot was warm"),
            }
            last_repair = Some(repair);
            events += 1;

            // Patched profile must equal a from-scratch build of the
            // mutated schedule, served through the query path.
            let view = sched.residue_schedule().unwrap();
            let checker = GraphChecker::new(sched.graph());
            let oracle =
                CycleProfile::build(view, sched.first_holiday(), sched.node_count(), &checker);
            let served = service.profile(1).unwrap();
            assert!(served.content_eq(&oracle), "event {events}: patched profile diverged");
        }
        assert!(patched > 0, "at least some events must take the in-place path");
        assert_eq!(
            service.query(2, 0, 3 * cycle).unwrap(),
            untouched,
            "the cotenant's profile must be copy-on-write isolated from the mutation"
        );
        let stats = service.stats();
        assert_eq!(stats.patches + stats.rebuilds - 1, events, "every event counted");

        // Replaying an already-applied event no longer fits the slot's
        // graph: a typed error, and the slot is left untouched.
        let replay = last_repair.expect("loop ran");
        let err = service.patch(1, &replay).unwrap_err();
        assert!(matches!(err, PatchError::Graph(_)), "{err}");
        assert!(matches!(service.patch(77, &replay), Err(PatchError::UnknownTenant(77))));
    }

    #[test]
    fn audit_step_knob_falls_back_instead_of_panicking() {
        // Same contract as FHG_PATCH_LIMIT: garbage in the environment
        // warns and falls back, never kills the server.
        assert_eq!(parse_audit_step(None), AUDIT_STEP);
        assert_eq!(parse_audit_step(Some("")), AUDIT_STEP);
        assert_eq!(parse_audit_step(Some("  ")), AUDIT_STEP);
        assert_eq!(parse_audit_step(Some("garbage")), AUDIT_STEP);
        assert_eq!(parse_audit_step(Some("-3")), AUDIT_STEP);
        assert_eq!(parse_audit_step(Some("0")), 0, "zero disables the scrubber");
        assert_eq!(parse_audit_step(Some(" 16 ")), 16, "whitespace is trimmed");
    }

    #[test]
    fn budget_violating_patch_rolls_back_bitwise() {
        use crate::dynamic::EventRepair;
        use crate::schedulers::residue::RowChange;

        // Nodes 0 and 1 co-attend class 0 (0 mod 2 vs 0 mod 4), no edge.
        let g = Graph::new(2);
        let view = ResidueSchedule::scan_only(vec![0, 0], vec![2, 4]);
        let mut service = ProfileService::new();
        service.register(5, &g, &Fixed(view)).unwrap();
        assert_eq!(service.build_pending(), 1);
        let before = service.query_totals(5, 0, 16).unwrap();
        let oracle = service.profile(5).unwrap().clone();
        let stats_before = service.stats();

        // A repair whose recolouring stretches the cycle past MAX_CYCLE:
        // validate must refuse it AND restore the pre-event rows, edge and
        // profile bitwise.
        let event = fhg_graph::EdgeEvent { kind: EdgeEventKind::Insert, u: 0, v: 1, holiday: 0 };
        let change = RowChange {
            node: 0,
            old_slot: 0,
            old_modulus: 2,
            new_slot: 0,
            new_modulus: (1 << 22) + 1,
        };
        let err = service.patch(5, &EventRepair::from_parts(event, &[change])).unwrap_err();
        assert!(
            matches!(err, PatchError::BudgetExceeded(RegisterError::CycleTooLong { .. })),
            "{err}"
        );
        assert_eq!(service.warm_count(), 1, "the slot keeps serving");
        assert_eq!(service.quarantined_count(), 0);
        assert_eq!(service.query_totals(5, 0, 16).unwrap(), before, "pre-event answers");
        assert!(service.profile(5).unwrap().content_eq(&oracle), "profile bitwise-untouched");
        let stats = service.stats();
        assert_eq!(stats.patches, stats_before.patches, "nothing counted as progress");
        assert_eq!(stats.rebuilds, stats_before.rebuilds);
        assert_eq!(stats.quarantines, 0);

        // The rollback restored the graph too: replaying the same edge
        // insert with an in-budget repair must apply cleanly (it would be
        // PatchError::Graph if the edge had survived the rollback).
        let outcome = service.patch(5, &EventRepair::from_parts(event, &[])).unwrap();
        assert!(outcome != PatchOutcome::Cold, "slot was warm");
        assert!(
            !service.profile(5).unwrap().all_classes_independent(),
            "the inserted edge lands inside co-attendance class 0"
        );
    }

    #[test]
    fn audit_passes_clean_slots_and_walks_the_ring() {
        let mut service = ProfileService::new();
        for i in 0..3u64 {
            let g = erdos_renyi(20 + i as usize, 0.15, i);
            let s = PeriodicDegreeBound::new(&g);
            service.register(i, &g, &s).unwrap();
        }
        assert_eq!(service.audit_step(4), 0, "nothing warm to audit yet");
        assert_eq!(service.build_pending(), 3);

        assert_eq!(service.audit_step(2), 2);
        assert_eq!(service.audit_step(2), 2, "cursor resumes round-robin");
        assert_eq!(service.audit_step(8), 3, "k caps at the warm population");
        let audit = service.audit_stats();
        assert_eq!(audit.steps, 4);
        assert_eq!(audit.audited, 7);
        assert_eq!(audit.mismatches, 0, "healthy profiles must pass");
        assert_eq!(audit.quarantined, 0);
        assert_eq!(service.quarantined_count(), 0);
        assert_eq!(service.stats().quarantines, 0);
    }

    #[test]
    fn schedule_key_separates_graph_and_schedule_content() {
        let g1 = erdos_renyi(24, 0.15, 3);
        let mut g2 = g1.clone();
        // Flip one edge: same schedule, different graph, different key.
        let (u, v) = (0, 1);
        if g2.has_edge(u, v) {
            g2.remove_edge(u, v).unwrap();
        } else {
            g2.add_edge(u, v).unwrap();
        }
        let s1 = PeriodicDegreeBound::new(&g1);
        let view = s1.residue_schedule().unwrap();
        let k_same = schedule_key(&g1, view, 1);
        assert_eq!(k_same, schedule_key(&g1, view, 1), "deterministic");
        assert_ne!(k_same, schedule_key(&g2, view, 1), "graph content is part of the key");
        assert_ne!(k_same, schedule_key(&g1, view, 2), "the first holiday is part of the key");
    }
}
