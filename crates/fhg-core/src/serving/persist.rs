//! Durable serving: checksummed snapshots plus an event write-ahead log,
//! with torn-write recovery.
//!
//! A [`ProfileService`] is rebuilt from two files in a snapshot directory,
//! both framed by the section grammar of [`fhg_codes::wire`] (every frame
//! is `tag | len:u32le | payload | fnv64:u64le`, checksum covering the
//! whole frame):
//!
//! # Snapshot file (`snapshot.fhg`)
//!
//! ```text
//! snapshot := magic "FHGSNAP1" (8 bytes; last byte is the format version)
//!             META
//!             (SLOT_CONTENT SLOT_PROFILE)*   one pair per slot, key-sorted
//!             END                            empty-payload completion marker
//! ```
//!
//! Section payloads are MSB-first bit streams ([`wire::BitSink`]): fixed
//! 64-bit fields for keys/starts/holidays, Elias gamma for every count,
//! modulus, slot and node id (`γ0` denotes the `value+1` shift that admits
//! zero).  All layouts are endian-stable — no host integer is ever written
//! raw.
//!
//! * `META`         — `next_private_key:64 | slot_count:γ0 | tenant_count:γ0`
//! * `SLOT_CONTENT` — `key:64 | start:64 | private:1 | name_len:γ0 |
//!   name_bytes | view_n:γ0 | (modulus:γ slot:γ0)^view_n | graph_n:γ0 |
//!   (upper_deg:γ0 (delta:γ)^upper_deg)^graph_n | tenant_count:γ0 |
//!   (tenant:64)^count` — the graph is stored as each node's
//!   higher-numbered neighbours, ascending, delta-coded (first delta is
//!   `v−u`), so an edge costs one gamma codeword instead of two `u64`s.
//! * `SLOT_PROFILE` — `key:64 | state:3` where state is 0 Building,
//!   1 Warm (followed by `all_independent:1`), 2–5 Quarantined
//!   (PatchPanic, BuildPanic, AuditMismatch, RecoveryMismatch).  A warm
//!   profile stores **no lanes, sizes or bank**: everything except the
//!   verdict bit is a pure function of `(view, start, node_count)` and is
//!   reconstructed by [`CycleProfile::rehydrate`] in `O(cycle+attendance)`
//!   — recovery never cold-builds an uncorrupted slot.
//! * `END`          — the atomic-completion marker; a snapshot without it
//!   is torn and only its readable prefix is salvaged.
//!
//! The snapshot is written atomically: temp file, `fsync`, rename, `fsync`
//! of the directory — the same pattern the bench binary uses for
//! `BENCH_analysis.json` — so a crash leaves either the old snapshot or
//! the new one, never a mix.
//!
//! # WAL file (`wal.fhg`)
//!
//! ```text
//! wal   := magic "FHGWAL01" frame*
//! frame := section(tag = WAL_FRAME) with payload:
//!          tenant:64 | kind:1 | u:γ0 | v:γ0 | holiday:64 |
//!          n_changes:γ0 | (node:γ0 old_slot:γ0 old_modulus:γ0
//!                          new_slot:γ0 new_modulus:γ0)^n_changes
//! ```
//!
//! [`WalWriter::append`] encodes one [`EventRepair`] per frame into a
//! reusable sink (steady-state appends allocate nothing — proved by
//! `tests/zero_alloc.rs`) and syncs per the [`wal_sync`] policy
//! (`FHG_WAL_SYNC`).  The intended protocol: `snapshot()` then
//! [`WalWriter::truncate`]; on every live event, `append` **first**, and
//! only on `Ok` apply the event to the live service — so the log is always
//! a superset of the applied events and replay converges.
//!
//! # Recovery state machine
//!
//! [`ProfileService::recover`] walks:
//!
//! 1. **Load** the snapshot.  Missing file, short/foreign magic or an
//!    unknown version are typed [`RecoverError`]s.  Section scan: a
//!    `Corrupt` frame (checksum mismatch, in-bounds length) is skipped and
//!    counted; a `Torn` tail or missing `END` stops the scan and salvages
//!    the prefix ([`RecoveryReport::snapshot_torn`]).
//! 2. **Assemble** slots.  A slot whose content decodes but whose budgets
//!    no longer validate is dropped (its tenants simply aren't restored —
//!    queries get the typed `UnknownTenant`).  A content section without a
//!    matching readable profile section comes back
//!    [`Quarantined`](super::SlotState::Quarantined) with
//!    [`QuarantineReason::RecoveryMismatch`] — content is intact, so
//!    [`ProfileService::repair_quarantined`] rebuilds it.  Warm slots are
//!    **rehydrated**, not rebuilt.
//! 3. **Replay** the WAL through the live [`ProfileService::patch`] plane.
//!    A frame for an unknown tenant is skipped and counted.  A frame that
//!    faults (a `recover.replay` failpoint, a panic, a graph/budget
//!    mismatch) quarantines its tenant with `RecoveryMismatch` and stops
//!    replaying that tenant — its slot content stays a clean prefix of the
//!    log, so a later fault-free `recover` from the same directory
//!    converges.  A torn or corrupt WAL tail truncates the file on disk at
//!    the last intact frame boundary and stops.
//! 4. **Audit** a sample ([`ProfileService::audit_step`] with the
//!    `FHG_AUDIT_STEP` batch) before returning, so silently-wrong verdicts
//!    are caught before the service serves.
//!
//! Corruption anywhere takes one of those typed degraded paths; recovery
//! never panics on any byte stream (fuzzed in the unit tests below, and
//! exercised at every section boundary / byte offset by `tests/chaos.rs`).
//!
//! # Failpoints and knobs
//!
//! Sites `wal.append`, `snapshot.write` and `recover.replay` participate
//! in `FHG_FAILPOINTS`.  `FHG_SNAPSHOT_DIR` ([`snapshot_dir`]) names the
//! default directory for serving loops that persist; `FHG_WAL_SYNC`
//! ([`wal_sync`]) picks the append durability policy — both under the
//! warn-and-fall-back contract.

use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use fhg_codes::wire::{self, BitSink, BitSource, SectionRead};
use fhg_graph::{EdgeEvent, EdgeEventKind, Graph};

use super::{
    audit_step_size, CycleProfile, EventRepair, PatchError, ProfileService, ProfileSlot,
    QuarantineReason, ResidueSchedule, RowChange, SlotState,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::OnceLock;

/// Snapshot file name inside the snapshot directory.
pub const SNAPSHOT_FILE: &str = "snapshot.fhg";
/// Temp name the snapshot is staged under before the atomic rename.
const SNAPSHOT_TMP: &str = "snapshot.fhg.tmp";
/// WAL file name inside the snapshot directory.
pub const WAL_FILE: &str = "wal.fhg";

/// Snapshot magic; the trailing byte is the format version.
const SNAPSHOT_MAGIC: [u8; 8] = *b"FHGSNAP1";
/// WAL magic (versioned the same way).
const WAL_MAGIC: [u8; 8] = *b"FHGWAL01";

const TAG_META: u8 = 0x01;
const TAG_SLOT_CONTENT: u8 = 0x02;
const TAG_SLOT_PROFILE: u8 = 0x03;
const TAG_END: u8 = 0x7F;
const TAG_WAL_FRAME: u8 = 0x10;

/// Default WAL append durability: sync every frame.
pub const WAL_SYNC: WalSync = WalSync::Always;

/// WAL append durability policy — see [`wal_sync`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSync {
    /// `fdatasync` after every appended frame: an acknowledged event
    /// survives an immediate crash.
    Always,
    /// No per-append sync: the tail may be torn on crash (recovery
    /// truncates it), in exchange for append throughput.
    Never,
}

/// The WAL durability policy, decided once per process and cached in a
/// `OnceLock`: the `FHG_WAL_SYNC` environment variable (`always` /
/// `never`, case-insensitive) when set, otherwise [`WAL_SYNC`].
///
/// Same warn-and-fall-back contract as every other `FHG_*` knob: a
/// malformed value logs one warning to stderr and falls back to the
/// default (pinned by the unit tests below).
pub fn wal_sync() -> WalSync {
    static SYNC: OnceLock<WalSync> = OnceLock::new();
    *SYNC.get_or_init(|| parse_wal_sync(std::env::var("FHG_WAL_SYNC").ok().as_deref()))
}

/// Parses the `FHG_WAL_SYNC` override (factored out of [`wal_sync`] so the
/// fallback policy is testable despite the process-wide cache).
fn parse_wal_sync(raw: Option<&str>) -> WalSync {
    match raw {
        None => WAL_SYNC,
        Some(raw) if raw.trim().is_empty() => WAL_SYNC,
        Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "always" => WalSync::Always,
            "never" => WalSync::Never,
            _ => {
                eprintln!(
                    "warning: FHG_WAL_SYNC={raw:?} is not \"always\" or \"never\"; \
                     using the default (always)"
                );
                WAL_SYNC
            }
        },
    }
}

/// The default snapshot directory, decided once per process and cached in
/// a `OnceLock`: the `FHG_SNAPSHOT_DIR` environment variable when set and
/// non-empty, otherwise `None` — persistence is strictly opt-in, so a
/// service with no directory configured never touches the filesystem.
/// (Every string is a valid path, so unlike the numeric knobs there is no
/// malformed case to warn about; empty/whitespace disables.)
pub fn snapshot_dir() -> Option<PathBuf> {
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| parse_snapshot_dir(std::env::var("FHG_SNAPSHOT_DIR").ok().as_deref()))
        .clone()
}

/// Parses the `FHG_SNAPSHOT_DIR` setting (factored out of [`snapshot_dir`]
/// so the policy is testable despite the process-wide cache).
fn parse_snapshot_dir(raw: Option<&str>) -> Option<PathBuf> {
    match raw {
        None => None,
        Some(raw) if raw.trim().is_empty() => None,
        Some(raw) => Some(PathBuf::from(raw.trim())),
    }
}

/// What [`ProfileService::snapshot`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Total snapshot size on disk, in bytes.
    pub bytes: u64,
    /// Slots persisted.
    pub slots: usize,
    /// Tenant bindings persisted.
    pub tenants: usize,
}

/// Why [`ProfileService::recover`] could not even start: the snapshot file
/// is absent or not ours.  Everything *past* these checks degrades
/// per-section/per-slot instead of failing the whole recovery — see the
/// module docs.
#[derive(Debug)]
pub enum RecoverError {
    /// The snapshot directory has no snapshot file.
    MissingSnapshot(PathBuf),
    /// The snapshot file could not be read.
    Io(io::Error),
    /// The file does not start with the snapshot magic — not ours.
    BadMagic,
    /// The magic matched but the version byte is from a future format.
    UnsupportedVersion(u8),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::MissingSnapshot(dir) => {
                write!(f, "no snapshot at {}", dir.display())
            }
            RecoverError::Io(e) => write!(f, "snapshot unreadable: {e}"),
            RecoverError::BadMagic => write!(f, "snapshot magic mismatch (not an FHG snapshot)"),
            RecoverError::UnsupportedVersion(v) => {
                write!(f, "snapshot format version {:?} is not supported", *v as char)
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// What [`ProfileService::recover`] found and did — every degraded path is
/// visible here, so operators can distinguish "clean restart" from
/// "salvaged what we could".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Slots restored from the snapshot.
    pub slots_loaded: usize,
    /// Tenant bindings restored.
    pub tenants_restored: usize,
    /// Warm profiles reconstructed via [`CycleProfile::rehydrate`] (never
    /// a cold build).
    pub profiles_rehydrated: usize,
    /// Snapshot sections dropped: checksum-corrupt frames, duplicate or
    /// undecodable slots, unknown tags.
    pub sections_dropped: usize,
    /// Whether the snapshot ended mid-frame or without its END marker
    /// (the readable prefix was salvaged).
    pub snapshot_torn: bool,
    /// WAL frames applied through the patch plane.
    pub wal_frames_replayed: usize,
    /// WAL frames skipped: unknown tenants, or tenants already failed by
    /// an earlier frame this recovery.
    pub wal_frames_skipped: usize,
    /// Whether the WAL had a torn or corrupt tail.
    pub wal_torn: bool,
    /// Byte offset the WAL was physically truncated to, when it was.
    pub wal_truncated_to: Option<u64>,
    /// Slots left quarantined after recovery (any reason).
    pub quarantined: usize,
    /// Warm slots re-verified by the closing audit sample.
    pub audited: usize,
}

/// Append-only writer for the event WAL.  One long-lived instance per
/// snapshot directory; the encode sink and frame buffer are reused, so
/// steady-state appends perform zero heap allocations.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    sink: BitSink,
    frame: Vec<u8>,
    sync: WalSync,
    frames: u64,
}

impl WalWriter {
    /// Opens (creating if needed) the WAL in `dir`, appending after any
    /// existing frames, with the environment-tuned [`wal_sync`] policy.
    pub fn create(dir: &Path) -> io::Result<Self> {
        Self::with_sync(dir, wal_sync())
    }

    /// [`WalWriter::create`] with an explicit durability policy.
    pub fn with_sync(dir: &Path, sync: WalSync) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new().append(true).create(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            file.write_all(&WAL_MAGIC)?;
            file.sync_data()?;
        }
        Ok(WalWriter { file, path, sink: BitSink::new(), frame: Vec::new(), sync, frames: 0 })
    }

    /// Appends one event frame.  Fails *before* touching the file (the
    /// `wal.append` failpoint, or any I/O error from the write itself
    /// leaves at worst a torn tail that recovery truncates).  On `Err` the
    /// caller must **not** apply the event to the live service — the log
    /// must stay a superset of applied events.
    pub fn append(&mut self, tenant: u64, repair: &EventRepair) -> io::Result<()> {
        crate::fail_point!("wal.append", return Err(io::Error::other("injected wal.append fault")));
        self.sink.clear();
        encode_frame(&mut self.sink, tenant, repair);
        self.frame.clear();
        wire::write_section(&mut self.frame, TAG_WAL_FRAME, self.sink.bytes());
        self.file.write_all(&self.frame)?;
        if self.sync == WalSync::Always {
            self.file.sync_data()?;
        }
        self.frames += 1;
        Ok(())
    }

    /// Resets the log to empty (magic only) — called right after a
    /// successful snapshot, which supersedes every logged event.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Frames appended through this writer (not counting pre-existing
    /// frames in the file).
    pub fn frames_appended(&self) -> u64 {
        self.frames
    }

    /// The WAL file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn encode_frame(sink: &mut BitSink, tenant: u64, repair: &EventRepair) {
    let event = repair.event;
    sink.put_u64(tenant);
    sink.push_bit(event.kind == EdgeEventKind::Delete);
    sink.put_gamma0(event.u as u64);
    sink.put_gamma0(event.v as u64);
    sink.put_u64(event.holiday);
    let changes = repair.row_changes();
    sink.put_gamma0(changes.len() as u64);
    for c in changes {
        sink.put_gamma0(c.node as u64);
        sink.put_gamma0(c.old_slot);
        sink.put_gamma0(c.old_modulus);
        sink.put_gamma0(c.new_slot);
        sink.put_gamma0(c.new_modulus);
    }
}

fn decode_frame(payload: &[u8]) -> Option<(u64, EventRepair)> {
    let mut r = BitSource::new(payload);
    let tenant = r.get_u64()?;
    let kind = if r.read_bit()? { EdgeEventKind::Delete } else { EdgeEventKind::Insert };
    let u = usize::try_from(r.get_gamma0()?).ok()?;
    let v = usize::try_from(r.get_gamma0()?).ok()?;
    let holiday = r.get_u64()?;
    let n = r.get_gamma0()?;
    if n > 2 {
        return None;
    }
    let mut changes = [RowChange::default(); 2];
    for c in changes.iter_mut().take(n as usize) {
        c.node = usize::try_from(r.get_gamma0()?).ok()?;
        c.old_slot = r.get_gamma0()?;
        c.old_modulus = r.get_gamma0()?;
        c.new_slot = r.get_gamma0()?;
        c.new_modulus = r.get_gamma0()?;
    }
    let event = EdgeEvent { kind, u, v, holiday };
    Some((tenant, EventRepair::from_parts(event, &changes[..n as usize])))
}

/// A slot decoded from the snapshot, before assembly into a service.
struct PendingSlot {
    key: u64,
    start: u64,
    private: bool,
    name: String,
    view: ResidueSchedule,
    graph: Graph,
    tenants: Vec<u64>,
}

/// The profile-state half of a slot, decoded from its `SLOT_PROFILE`
/// section.
enum PendingState {
    Building,
    Warm { all_independent: bool },
    Quarantined(QuarantineReason),
}

fn encode_slot_content(sink: &mut BitSink, key: u64, slot: &ProfileSlot, tenants: &[u64]) {
    sink.put_u64(key);
    sink.put_u64(slot.start);
    sink.push_bit(slot.private);
    sink.put_gamma0(slot.name.len() as u64);
    sink.put_bytes(slot.name.as_bytes());
    let view = &slot.view;
    sink.put_gamma0(view.node_count() as u64);
    for p in 0..view.node_count() {
        sink.put_gamma(view.modulus(p));
        sink.put_gamma0(view.slot(p));
    }
    let graph = &slot.graph;
    let n = graph.node_count();
    sink.put_gamma0(n as u64);
    let mut uppers: Vec<u64> = Vec::new();
    for u in 0..n {
        uppers.clear();
        uppers.extend(graph.neighbors(u).iter().filter(|&&v| v > u).map(|&v| v as u64));
        uppers.sort_unstable();
        sink.put_gamma0(uppers.len() as u64);
        let mut prev = u as u64;
        for &v in &uppers {
            sink.put_gamma(v - prev);
            prev = v;
        }
    }
    sink.put_gamma0(tenants.len() as u64);
    for &t in tenants {
        sink.put_u64(t);
    }
}

fn decode_slot_content(payload: &[u8]) -> Option<PendingSlot> {
    let mut r = BitSource::new(payload);
    let key = r.get_u64()?;
    let start = r.get_u64()?;
    let private = r.read_bit()?;
    let name_len = usize::try_from(r.get_gamma0()?).ok()?;
    if name_len > r.remaining_bits() / 8 {
        return None;
    }
    let mut name_bytes = Vec::with_capacity(name_len);
    for _ in 0..name_len {
        name_bytes.push(r.read_bits(8)? as u8);
    }
    let name = String::from_utf8(name_bytes).ok()?;

    let view_n = usize::try_from(r.get_gamma0()?).ok()?;
    // Anti-bomb guard: every node costs at least 2 bits, so a count beyond
    // the remaining stream is a forged length, not data.
    if view_n > r.remaining_bits() {
        return None;
    }
    let mut slots = Vec::new();
    let mut moduli = Vec::new();
    for _ in 0..view_n {
        let m = r.get_gamma()?;
        let s = r.get_gamma0()?;
        if s >= m {
            return None;
        }
        moduli.push(m);
        slots.push(s);
    }

    let graph_n = usize::try_from(r.get_gamma0()?).ok()?;
    if graph_n > r.remaining_bits() {
        return None;
    }
    let mut graph = Graph::new(graph_n);
    for u in 0..graph_n {
        let deg = usize::try_from(r.get_gamma0()?).ok()?;
        if deg > r.remaining_bits() {
            return None;
        }
        let mut v = u as u64;
        for _ in 0..deg {
            v += r.get_gamma()?;
            let v = usize::try_from(v).ok()?;
            if v >= graph_n {
                return None;
            }
            graph.add_edge(u, v).ok()?;
        }
    }

    let tenant_count = usize::try_from(r.get_gamma0()?).ok()?;
    if tenant_count > r.remaining_bits() / 64 {
        return None;
    }
    let mut tenants = Vec::with_capacity(tenant_count);
    for _ in 0..tenant_count {
        tenants.push(r.get_u64()?);
    }

    // Slot/modulus pairs were validated above, so this constructor's
    // asserts cannot fire.
    let view = ResidueSchedule::new(slots, moduli);
    Some(PendingSlot { key, start, private, name, view, graph, tenants })
}

fn encode_slot_profile(sink: &mut BitSink, key: u64, state: &SlotState) {
    sink.put_u64(key);
    match state {
        SlotState::Building => sink.put_bits(0, 3),
        SlotState::Warm(profile) => {
            sink.put_bits(1, 3);
            sink.push_bit(profile.all_classes_independent());
        }
        SlotState::Quarantined(reason) => {
            let code = match reason {
                QuarantineReason::PatchPanic => 2,
                QuarantineReason::BuildPanic => 3,
                QuarantineReason::AuditMismatch => 4,
                QuarantineReason::RecoveryMismatch => 5,
            };
            sink.put_bits(code, 3);
        }
    }
}

fn decode_slot_profile(payload: &[u8]) -> Option<(u64, PendingState)> {
    let mut r = BitSource::new(payload);
    let key = r.get_u64()?;
    let state = match r.read_bits(3)? {
        0 => PendingState::Building,
        1 => PendingState::Warm { all_independent: r.read_bit()? },
        2 => PendingState::Quarantined(QuarantineReason::PatchPanic),
        3 => PendingState::Quarantined(QuarantineReason::BuildPanic),
        4 => PendingState::Quarantined(QuarantineReason::AuditMismatch),
        5 => PendingState::Quarantined(QuarantineReason::RecoveryMismatch),
        _ => return None,
    };
    Some((key, state))
}

impl ProfileService {
    /// Serialises the whole service into the snapshot byte format (see the
    /// module docs).  Public so size accounting (the e19 bytes-per-tenant
    /// criterion) can measure without touching the filesystem.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut by_key: HashMap<u64, Vec<u64>> = HashMap::new();
        for (&tenant, &key) in &self.tenants {
            by_key.entry(key).or_default().push(tenant);
        }
        let mut keys: Vec<u64> = self.slots.keys().copied().collect();
        keys.sort_unstable();

        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        let mut sink = BitSink::new();
        sink.put_u64(self.next_private_key);
        sink.put_gamma0(self.slots.len() as u64);
        sink.put_gamma0(self.tenants.len() as u64);
        wire::write_section(&mut out, TAG_META, sink.bytes());

        for key in keys {
            let slot = &self.slots[&key];
            let mut tenants = by_key.remove(&key).unwrap_or_default();
            tenants.sort_unstable();
            sink.clear();
            encode_slot_content(&mut sink, key, slot, &tenants);
            wire::write_section(&mut out, TAG_SLOT_CONTENT, sink.bytes());
            sink.clear();
            encode_slot_profile(&mut sink, key, &slot.state);
            wire::write_section(&mut out, TAG_SLOT_PROFILE, sink.bytes());
        }
        wire::write_section(&mut out, TAG_END, &[]);
        out
    }

    /// Writes a checksummed snapshot of the whole service to
    /// `dir/snapshot.fhg`, atomically: staged to a temp file, synced,
    /// renamed over the previous snapshot, directory synced.  A failure
    /// anywhere (including the injected `snapshot.write` fault) removes
    /// the temp file and leaves any previous snapshot untouched.
    pub fn snapshot(&self, dir: &Path) -> io::Result<SnapshotStats> {
        crate::fail_point!(
            "snapshot.write",
            return Err(io::Error::other("injected snapshot.write fault"))
        );
        let bytes = self.snapshot_bytes();
        fs::create_dir_all(dir)?;
        let tmp = dir.join(SNAPSHOT_TMP);
        let path = dir.join(SNAPSHOT_FILE);
        let staged = File::create(&tmp)
            .and_then(|mut f| f.write_all(&bytes).and_then(|()| f.sync_all()))
            .and_then(|()| fs::rename(&tmp, &path))
            .and_then(|()| File::open(dir).and_then(|d| d.sync_all()));
        if let Err(e) = staged {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(SnapshotStats {
            bytes: bytes.len() as u64,
            slots: self.slots.len(),
            tenants: self.tenants.len(),
        })
    }

    /// Rebuilds a service from `dir`: load + verify the snapshot, rehydrate
    /// warm profiles, replay the WAL through the patch plane, audit a
    /// sample — the full recovery state machine described in the module
    /// docs.  Only a missing/foreign/unreadable snapshot fails the call;
    /// all other corruption degrades per-slot into the typed paths
    /// recorded in the returned [`RecoveryReport`].
    pub fn recover(dir: &Path) -> Result<(ProfileService, RecoveryReport), RecoverError> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        let bytes = fs::read(&snap_path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                RecoverError::MissingSnapshot(dir.to_path_buf())
            } else {
                RecoverError::Io(e)
            }
        })?;
        if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..7] != SNAPSHOT_MAGIC[..7] {
            return Err(RecoverError::BadMagic);
        }
        if bytes[7] != SNAPSHOT_MAGIC[7] {
            return Err(RecoverError::UnsupportedVersion(bytes[7]));
        }

        let mut report = RecoveryReport::default();
        let mut contents: Vec<PendingSlot> = Vec::new();
        let mut states: HashMap<u64, PendingState> = HashMap::new();
        let mut seen_keys: HashSet<u64> = HashSet::new();
        let mut next_private_key = 0u64;
        let mut saw_end = false;

        let mut pos = SNAPSHOT_MAGIC.len();
        loop {
            match wire::read_section(&bytes, pos) {
                SectionRead::End => break,
                SectionRead::Torn => {
                    report.snapshot_torn = true;
                    break;
                }
                SectionRead::Corrupt { skip_to } => {
                    report.sections_dropped += 1;
                    pos = skip_to;
                }
                SectionRead::Section { tag, payload, end } => {
                    pos = end;
                    match tag {
                        TAG_META => {
                            let mut r = BitSource::new(payload);
                            if let Some(npk) = r.get_u64() {
                                next_private_key = npk;
                            }
                        }
                        TAG_SLOT_CONTENT => match decode_slot_content(payload) {
                            Some(pending) if seen_keys.insert(pending.key) => {
                                contents.push(pending);
                            }
                            _ => report.sections_dropped += 1,
                        },
                        TAG_SLOT_PROFILE => match decode_slot_profile(payload) {
                            Some((key, state)) => {
                                states.insert(key, state);
                            }
                            None => report.sections_dropped += 1,
                        },
                        TAG_END => {
                            saw_end = true;
                            break;
                        }
                        _ => report.sections_dropped += 1,
                    }
                }
            }
        }
        if !saw_end {
            report.snapshot_torn = true;
        }

        // Assemble: every decoded slot either restores (warm slots
        // rehydrated — never cold-built), survives quarantined, or is
        // dropped when its budgets no longer validate.
        let mut svc = ProfileService::new();
        svc.next_private_key = next_private_key;
        for pending in contents {
            let cycle = pending.view.cycle();
            let attendance = pending.view.attendance_per_cycle();
            if cycle > CycleProfile::MAX_CYCLE || attendance > CycleProfile::MAX_EVENTS {
                report.sections_dropped += 1;
                continue;
            }
            let mut bound = 0usize;
            for &tenant in &pending.tenants {
                if let std::collections::hash_map::Entry::Vacant(e) = svc.tenants.entry(tenant) {
                    e.insert(pending.key);
                    bound += 1;
                }
            }
            if bound == 0 {
                report.sections_dropped += 1;
                continue;
            }
            let state = match states.get(&pending.key) {
                Some(PendingState::Warm { all_independent }) => {
                    report.profiles_rehydrated += 1;
                    SlotState::Warm(CycleProfile::rehydrate(
                        &pending.view,
                        pending.start,
                        pending.graph.node_count(),
                        *all_independent,
                    ))
                }
                Some(PendingState::Building) => SlotState::Building,
                Some(PendingState::Quarantined(reason)) => SlotState::Quarantined(*reason),
                // Content without a readable profile section: the torn /
                // corrupt half of a slot pair — typed quarantine, content
                // is intact so repair_quarantined rebuilds it.
                None => SlotState::Quarantined(QuarantineReason::RecoveryMismatch),
            };
            svc.slots.insert(
                pending.key,
                ProfileSlot {
                    graph: pending.graph,
                    view: pending.view,
                    start: pending.start,
                    name: pending.name,
                    state,
                    refs: bound,
                    private: pending.private,
                },
            );
            report.slots_loaded += 1;
            report.tenants_restored += bound;
        }

        Self::replay_wal(&mut svc, dir, &mut report);

        report.audited = svc.audit_step(audit_step_size());
        report.quarantined = svc.quarantined_count();
        Ok((svc, report))
    }

    /// Replays `dir/wal.fhg` through the patch plane — step 3 of the
    /// recovery state machine.
    fn replay_wal(svc: &mut ProfileService, dir: &Path, report: &mut RecoveryReport) {
        let wal_path = dir.join(WAL_FILE);
        let Ok(bytes) = fs::read(&wal_path) else {
            return;
        };
        if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            report.wal_torn = !bytes.is_empty();
            return;
        }

        enum Replayed {
            Applied,
            Skipped,
            Fault,
        }
        let mut failed: HashSet<u64> = HashSet::new();
        let mut pos = WAL_MAGIC.len();
        loop {
            let frame_start = pos;
            match wire::read_section(&bytes, pos) {
                SectionRead::End => break,
                SectionRead::Torn | SectionRead::Corrupt { .. } => {
                    // The tail cannot be trusted past the last intact
                    // frame: truncate it on disk so the next recovery (and
                    // any writer re-opened in append mode) starts from a
                    // clean boundary.
                    report.wal_torn = true;
                    report.wal_truncated_to = Some(frame_start as u64);
                    let _ = OpenOptions::new().write(true).open(&wal_path).and_then(|f| {
                        f.set_len(frame_start as u64)?;
                        f.sync_data()
                    });
                    break;
                }
                SectionRead::Section { tag, payload, end } => {
                    pos = end;
                    if tag != TAG_WAL_FRAME {
                        report.sections_dropped += 1;
                        continue;
                    }
                    let Some((tenant, repair)) = decode_frame(payload) else {
                        // Checksum-intact but grammar-invalid: treat like a
                        // corrupt tail — nothing after a mis-encoded frame
                        // can be ordered against the live state.
                        report.wal_torn = true;
                        report.wal_truncated_to = Some(frame_start as u64);
                        let _ = OpenOptions::new().write(true).open(&wal_path).and_then(|f| {
                            f.set_len(frame_start as u64)?;
                            f.sync_data()
                        });
                        break;
                    };
                    if failed.contains(&tenant) {
                        report.wal_frames_skipped += 1;
                        continue;
                    }
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        crate::fail_point!("recover.replay", return Replayed::Fault);
                        match svc.patch(tenant, &repair) {
                            Ok(_) => Replayed::Applied,
                            // A quarantined slot still absorbed the content
                            // change — replay stays convergent.
                            Err(PatchError::Quarantined(_)) => Replayed::Applied,
                            Err(PatchError::UnknownTenant(_)) => Replayed::Skipped,
                            // Graph/budget mismatch: the frame does not
                            // apply to the recovered content.
                            Err(_) => Replayed::Fault,
                        }
                    }));
                    match attempt {
                        Ok(Replayed::Applied) => report.wal_frames_replayed += 1,
                        Ok(Replayed::Skipped) => report.wal_frames_skipped += 1,
                        Ok(Replayed::Fault) | Err(_) => {
                            // Typed degraded path: quarantine the tenant and
                            // stop replaying its frames, leaving its content
                            // at a clean prefix of the log — a later
                            // fault-free recover from the same directory
                            // converges to the full oracle.
                            if let Some(&key) = svc.tenants.get(&tenant) {
                                if let Some(slot) = svc.slots.get_mut(&key) {
                                    if !matches!(slot.state, SlotState::Quarantined(_)) {
                                        svc.counters.quarantines.fetch_add(1, Relaxed);
                                    }
                                    slot.state =
                                        SlotState::Quarantined(QuarantineReason::RecoveryMismatch);
                                }
                            }
                            failed.insert(tenant);
                            report.wal_frames_skipped += 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::Fixed;
    use super::*;
    use crate::dynamic::DynamicColorBound;
    use crate::scheduler::Scheduler;
    use crate::schedulers::PeriodicDegreeBound;
    use fhg_graph::generators::erdos_renyi;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("fhg-persist-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("temp dir");
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn wal_sync_knob_warns_and_falls_back() {
        assert_eq!(parse_wal_sync(None), WalSync::Always);
        assert_eq!(parse_wal_sync(Some("")), WalSync::Always);
        assert_eq!(parse_wal_sync(Some("always")), WalSync::Always);
        assert_eq!(parse_wal_sync(Some("ALWAYS")), WalSync::Always);
        assert_eq!(parse_wal_sync(Some(" never ")), WalSync::Never);
        assert_eq!(parse_wal_sync(Some("fsync-sometimes")), WalSync::Always);
    }

    #[test]
    fn snapshot_dir_knob_is_opt_in() {
        assert_eq!(parse_snapshot_dir(None), None);
        assert_eq!(parse_snapshot_dir(Some("")), None);
        assert_eq!(parse_snapshot_dir(Some("   ")), None);
        assert_eq!(parse_snapshot_dir(Some("/var/lib/fhg")), Some(PathBuf::from("/var/lib/fhg")));
    }

    #[test]
    fn snapshot_recover_round_trip_is_bitwise_stable() {
        let dir = TempDir::new("roundtrip");
        let mut svc = ProfileService::new();
        let mut graphs = Vec::new();
        for i in 0..6u64 {
            let g = erdos_renyi(20 + i as usize, 0.15, 100 + i);
            svc.register(i, &g, &PeriodicDegreeBound::new(&g)).expect("register");
            graphs.push(g);
        }
        // Tenant 6 shares tenant 0's content — one slot, two tenants.
        svc.register(6, &graphs[0], &PeriodicDegreeBound::new(&graphs[0])).expect("register");
        svc.build_pending();
        let stats = svc.snapshot(dir.path()).expect("snapshot");
        assert_eq!(stats.tenants, 7);
        assert_eq!(stats.slots, 6);

        let (recovered, report) = ProfileService::recover(dir.path()).expect("recover");
        assert_eq!(report.tenants_restored, 7);
        assert_eq!(report.slots_loaded, 6);
        assert_eq!(report.profiles_rehydrated, 6);
        assert!(!report.snapshot_torn && !report.wal_torn);
        assert_eq!(report.quarantined, 0);
        assert_eq!(recovered.stats().rebuilds, 0, "recovery must never cold-build");
        for t in 0..7u64 {
            let h = recovered.profile(t).expect("warm").cycle() * 2;
            assert_eq!(svc.query_totals(t, 1, h), recovered.query_totals(t, 1, h), "tenant {t}");
            assert!(recovered.profile(t).unwrap().content_eq(svc.profile(t).unwrap()));
        }
        // Idempotent: a snapshot of the recovered service is byte-identical.
        assert_eq!(svc.snapshot_bytes(), recovered.snapshot_bytes());
    }

    #[test]
    fn wal_replay_converges_with_the_live_service() {
        let dir = TempDir::new("wal-replay");
        let g = erdos_renyi(24, 0.12, 42);
        let mut sched = DynamicColorBound::new(&g);
        let mut svc = ProfileService::new();
        svc.register(1, sched.graph(), &sched).expect("register");
        let initial_builds = svc.build_pending() as u64;
        svc.snapshot(dir.path()).expect("snapshot");

        let mut wal = WalWriter::with_sync(dir.path(), WalSync::Never).expect("wal");
        // Toggle an absent edge a few times: insert/delete pairs that patch
        // in place.
        let (u, v) = {
            let mut pick = (0, 1);
            'outer: for u in 0..g.node_count() {
                for v in (u + 1)..g.node_count() {
                    if !g.has_edge(u, v) {
                        pick = (u, v);
                        break 'outer;
                    }
                }
            }
            pick
        };
        for holiday in 0..6u64 {
            let kind = if holiday % 2 == 0 { EdgeEventKind::Insert } else { EdgeEventKind::Delete };
            let repair =
                sched.apply_event(EdgeEvent { kind, u, v, holiday }).expect("event applies");
            wal.append(1, &repair).expect("append");
            svc.patch(1, &repair).expect("live patch");
        }
        assert_eq!(wal.frames_appended(), 6);

        let (recovered, report) = ProfileService::recover(dir.path()).expect("recover");
        assert_eq!(report.wal_frames_replayed, 6);
        assert_eq!(report.wal_frames_skipped, 0);
        assert!(!report.wal_torn);
        let h = recovered.profile(1).expect("warm").cycle() * 3;
        assert_eq!(svc.query_totals(1, 0, h), recovered.query_totals(1, 0, h));
        assert!(recovered.profile(1).unwrap().content_eq(svc.profile(1).unwrap()));
        // Replay takes the same patch-vs-rebuild decisions the live
        // service took, and recovery itself added no cold build on top
        // (`build_pending` counts its builds into `rebuilds`, replay
        // rebuilds only where the live patch rebuilt).
        assert_eq!(recovered.stats().rebuilds, svc.stats().rebuilds - initial_builds);
        assert_eq!(recovered.stats().patches, svc.stats().patches);
    }

    #[test]
    fn recover_is_total_on_garbage_files() {
        let dir = TempDir::new("garbage");
        // Missing snapshot is typed.
        assert!(matches!(
            ProfileService::recover(dir.path()),
            Err(RecoverError::MissingSnapshot(_))
        ));
        // Foreign magic is typed.
        fs::write(dir.path().join(SNAPSHOT_FILE), b"NOTASNAP-extra-bytes").unwrap();
        assert!(matches!(ProfileService::recover(dir.path()), Err(RecoverError::BadMagic)));
        // Future version is typed.
        fs::write(dir.path().join(SNAPSHOT_FILE), b"FHGSNAP9").unwrap();
        assert!(matches!(
            ProfileService::recover(dir.path()),
            Err(RecoverError::UnsupportedVersion(b'9'))
        ));
        // Magic followed by arbitrary garbage: salvaged empty, torn, no
        // panic — and a garbage WAL on the side is tolerated too.
        let mut junk = SNAPSHOT_MAGIC.to_vec();
        junk.extend((0..255u8).cycle().take(333));
        fs::write(dir.path().join(SNAPSHOT_FILE), &junk).unwrap();
        fs::write(dir.path().join(WAL_FILE), b"not a wal either").unwrap();
        let (svc, report) = ProfileService::recover(dir.path()).expect("salvage");
        assert_eq!(svc.tenant_count(), 0);
        assert!(report.snapshot_torn || report.sections_dropped > 0);
        assert!(report.wal_torn);
    }

    #[test]
    fn quarantined_and_building_states_survive_the_round_trip() {
        let dir = TempDir::new("states");
        let g = erdos_renyi(12, 0.2, 5);
        let view = {
            let s = PeriodicDegreeBound::new(&g);
            s.residue_schedule().expect("periodic").clone()
        };
        let mut svc = ProfileService::new();
        svc.register(1, &g, &Fixed(view)).expect("register");
        // Not built: the slot snapshots as Building.
        svc.snapshot(dir.path()).expect("snapshot");
        let (recovered, report) = ProfileService::recover(dir.path()).expect("recover");
        assert_eq!(report.profiles_rehydrated, 0);
        assert!(matches!(
            recovered.query_totals(1, 0, 10),
            Err(super::super::QueryError::ProfileNotBuilt(1))
        ));
        // And building it afterwards converges with a direct build.
        let mut recovered = recovered;
        assert_eq!(recovered.build_pending(), 1);
        assert!(recovered.profile(1).is_some());
    }

    #[test]
    fn torn_snapshot_quarantines_the_half_written_slot() {
        let dir = TempDir::new("torn-pair");
        let g = erdos_renyi(16, 0.2, 11);
        let mut svc = ProfileService::new();
        svc.register(1, &g, &PeriodicDegreeBound::new(&g)).expect("register");
        svc.build_pending();
        let bytes = svc.snapshot_bytes();
        // Cut right after the SLOT_CONTENT section: META + content survive,
        // the profile section and END are gone.
        let mut pos = SNAPSHOT_MAGIC.len();
        let mut boundaries = Vec::new();
        while let SectionRead::Section { end, .. } = wire::read_section(&bytes, pos) {
            boundaries.push(end);
            pos = end;
        }
        let cut = boundaries[1]; // [META, SLOT_CONTENT, SLOT_PROFILE, END]
        fs::write(dir.path().join(SNAPSHOT_FILE), &bytes[..cut]).unwrap();
        let (mut recovered, report) = ProfileService::recover(dir.path()).expect("recover");
        assert!(report.snapshot_torn);
        assert_eq!(report.slots_loaded, 1);
        assert_eq!(
            recovered.quarantine_reason(1),
            Some(QuarantineReason::RecoveryMismatch),
            "content without profile section must quarantine typed"
        );
        // Content is intact, so repair rebuilds and converges.
        assert_eq!(recovered.repair_quarantined(), 1);
        let rebuilt = recovered.profile(1).expect("repaired");
        assert!(rebuilt.content_eq(svc.profile(1).unwrap()));
    }

    #[test]
    fn wal_frame_encoding_round_trips() {
        let mut sink = BitSink::new();
        let event = EdgeEvent { kind: EdgeEventKind::Delete, u: 3, v: 17, holiday: 0xDEAD_BEEF };
        let changes = [
            RowChange { node: 17, old_slot: 2, old_modulus: 8, new_slot: 0, new_modulus: 4 },
            RowChange { node: 3, old_slot: 0, old_modulus: 1, new_slot: 5, new_modulus: 6 },
        ];
        let repair = EventRepair::from_parts(event, &changes);
        encode_frame(&mut sink, 99, &repair);
        let bytes = sink.bytes().to_vec();
        let (tenant, decoded) = decode_frame(&bytes).expect("decodes");
        assert_eq!(tenant, 99);
        assert_eq!(decoded.event, event);
        assert_eq!(decoded.row_changes(), &changes[..]);
        // Truncations never decode.
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }
}
