//! Canonical on-disk wire format: endian-stable bit streams over bytes,
//! streaming FNV-1a checksums and length-prefixed checksummed sections.
//!
//! The bit-level machinery in [`crate::bits`] stores one `bool` per bit —
//! ideal for proving prefix-freeness and reproducing the paper's §4 examples,
//! but wasteful as a storage substrate.  This module provides the packed
//! counterpart used by the serving tier's snapshot and write-ahead log:
//!
//! * [`BitSink`] / [`BitSource`] — MSB-first bit streams packed into bytes,
//!   with Elias-gamma helpers so the §4 universal codes double as the
//!   varint layer of the persistence plane.  All multi-bit fields are
//!   written MSB-first within the stream, making the byte layout identical
//!   on every platform (no host-endianness leaks into the file).
//! * [`fnv1a`] / [`Fnv64`] — the 64-bit FNV-1a hash (hand-rolled; no
//!   external checksum crate is reachable from this build environment).
//! * [`write_section`] / [`read_section`] — a length-prefixed, checksummed
//!   section framing shared by the snapshot and the WAL.
//!
//! # Section grammar
//!
//! ```text
//! section := tag:u8 | len:u32le | payload:[u8; len] | fnv64(tag‖len‖payload):u64le
//! ```
//!
//! The checksum covers the tag and the length prefix as well as the payload,
//! so a bit-flip anywhere in the frame is detected.  [`read_section`]
//! distinguishes three degraded outcomes so callers can take *typed* paths:
//! a clean end of input ([`SectionRead::End`]), a checksum mismatch whose
//! length prefix still lands in-bounds ([`SectionRead::Corrupt`] — the caller
//! may skip to the next frame), and a truncated tail
//! ([`SectionRead::Torn`] — scanning must stop and the tail is discarded).
//!
//! Every decoder in this module is total: arbitrary input bytes produce
//! `None`/`Torn`/`Corrupt`, never a panic, hang or shift overflow.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Streaming 64-bit FNV-1a hasher, for checksumming without materialising
/// the whole frame first.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds more bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The hash of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// An MSB-first bit stream packed into bytes, for building section payloads.
///
/// [`BitSink::clear`] keeps the allocated capacity, so a long-lived sink
/// (the WAL writer's encode buffer) reaches a steady state with zero
/// allocations per frame.
#[derive(Debug, Default)]
pub struct BitSink {
    bytes: Vec<u8>,
    acc: u8,
    used: u8,
}

impl BitSink {
    /// An empty sink.
    pub fn new() -> Self {
        BitSink::default()
    }

    /// Resets the sink to empty, keeping the byte buffer's capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.acc = 0;
        self.used = 0;
    }

    /// Appends one bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u8::from(bit);
        self.used += 1;
        if self.used == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.used = 0;
        }
    }

    /// Appends the low `k` bits of `value`, MSB-first.
    ///
    /// # Panics
    /// Panics if `k > 64`.
    pub fn put_bits(&mut self, value: u64, k: u32) {
        assert!(k <= 64, "put_bits width {k} exceeds u64");
        for i in (0..k).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends a full 64-bit field.
    pub fn put_u64(&mut self, value: u64) {
        self.put_bits(value, 64);
    }

    /// Appends the Elias gamma code of `value` (defined for `value ≥ 1`):
    /// `⌊log₂ value⌋` zeros followed by the binary representation.
    ///
    /// # Panics
    /// Panics if `value == 0`.
    pub fn put_gamma(&mut self, value: u64) {
        assert!(value >= 1, "gamma code is defined for n >= 1");
        let width = 64 - value.leading_zeros();
        self.put_bits(0, width - 1);
        self.put_bits(value, width);
    }

    /// Gamma-codes an arbitrary `u64` by shifting it into `1..`.
    ///
    /// # Panics
    /// Panics if `value == u64::MAX` (unrepresentable after the shift).
    pub fn put_gamma0(&mut self, value: u64) {
        assert!(value < u64::MAX, "gamma0 cannot represent u64::MAX");
        self.put_gamma(value + 1);
    }

    /// Appends raw bytes on the current (possibly unaligned) bit cursor.
    pub fn put_bytes(&mut self, data: &[u8]) {
        if self.used == 0 {
            self.bytes.extend_from_slice(data);
        } else {
            for &b in data {
                self.put_bits(u64::from(b), 8);
            }
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        while self.used != 0 {
            self.push_bit(false);
        }
    }

    /// Number of bits appended so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + usize::from(self.used)
    }

    /// Aligns to a byte boundary and returns the packed bytes.
    pub fn bytes(&mut self) -> &[u8] {
        self.align();
        &self.bytes
    }
}

/// An MSB-first bit cursor over packed bytes, the reading counterpart of
/// [`BitSink`].  All reads are total: a short stream yields `None` without
/// consuming bits.
#[derive(Debug, Clone)]
pub struct BitSource<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitSource<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitSource { bytes, pos: 0 }
    }

    /// Number of unread bits.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Current cursor position in bits.
    pub fn position_bits(&self) -> usize {
        self.pos
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bytes.len() * 8 {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `k` bits MSB-first.  Returns `None` without consuming anything
    /// if fewer than `k` bits remain or `k > 64`.
    pub fn read_bits(&mut self, k: u32) -> Option<u64> {
        if k > 64 || self.remaining_bits() < k as usize {
            return None;
        }
        let mut value = 0u64;
        for _ in 0..k {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - self.pos % 8)) & 1;
            value = (value << 1) | u64::from(bit);
            self.pos += 1;
        }
        Some(value)
    }

    /// Reads a full 64-bit field.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.read_bits(64)
    }

    /// Decodes one Elias gamma codeword.  A run of more than 63 zeros is an
    /// adversarial length claim and yields `None` (never a shift overflow).
    pub fn get_gamma(&mut self) -> Option<u64> {
        let mut zeros = 0u32;
        loop {
            match self.read_bit()? {
                true => break,
                false => {
                    zeros += 1;
                    if zeros > 63 {
                        return None;
                    }
                }
            }
        }
        let rest = self.read_bits(zeros)?;
        Some((1u64 << zeros) | rest)
    }

    /// Decodes a gamma0-coded value (inverse of [`BitSink::put_gamma0`]).
    pub fn get_gamma0(&mut self) -> Option<u64> {
        self.get_gamma().map(|v| v - 1)
    }

    /// Advances the cursor to the next byte boundary (no-op when aligned).
    pub fn align_to_byte(&mut self) {
        let phase = self.pos % 8;
        if phase != 0 {
            self.pos += 8 - phase;
        }
    }
}

/// Bytes of a section header: tag plus the u32 length prefix.
pub const SECTION_HEADER_LEN: usize = 5;
/// Bytes of a section trailer: the u64 FNV-1a checksum.
pub const SECTION_TRAILER_LEN: usize = 8;

/// Outcome of scanning one section at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionRead<'a> {
    /// A complete, checksum-verified section.
    Section {
        /// The section's tag byte.
        tag: u8,
        /// The payload bytes (borrowed from the input).
        payload: &'a [u8],
        /// Byte offset just past this section (where the next one starts).
        end: usize,
    },
    /// Clean end of input: the offset is exactly the input length.
    End,
    /// The checksum failed but the length prefix was in-bounds; `skip_to`
    /// is the offset just past the damaged frame, where scanning may resume.
    Corrupt {
        /// Byte offset just past the corrupt frame.
        skip_to: usize,
    },
    /// The input ends mid-frame (or the length prefix points out of
    /// bounds); nothing past this offset can be trusted.
    Torn,
}

/// Appends one framed section (`tag | len | payload | checksum`) to `out`.
///
/// # Panics
/// Panics if the payload exceeds `u32::MAX` bytes.
pub fn write_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("section payload exceeds u32::MAX bytes");
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Scans one section starting at byte offset `pos`.
///
/// Total over arbitrary input: every outcome is one of the four
/// [`SectionRead`] variants, never a panic or out-of-bounds read.
pub fn read_section(bytes: &[u8], pos: usize) -> SectionRead<'_> {
    if pos >= bytes.len() {
        return SectionRead::End;
    }
    let rest = bytes.len() - pos;
    if rest < SECTION_HEADER_LEN {
        return SectionRead::Torn;
    }
    let tag = bytes[pos];
    let len = u32::from_le_bytes([bytes[pos + 1], bytes[pos + 2], bytes[pos + 3], bytes[pos + 4]])
        as usize;
    let Some(total) =
        SECTION_HEADER_LEN.checked_add(len).and_then(|n| n.checked_add(SECTION_TRAILER_LEN))
    else {
        return SectionRead::Torn;
    };
    if total > rest {
        return SectionRead::Torn;
    }
    let body_end = pos + SECTION_HEADER_LEN + len;
    let mut sum_bytes = [0u8; 8];
    sum_bytes.copy_from_slice(&bytes[body_end..body_end + SECTION_TRAILER_LEN]);
    let stored = u64::from_le_bytes(sum_bytes);
    if fnv1a(&bytes[pos..body_end]) != stored {
        return SectionRead::Corrupt { skip_to: pos + total };
    }
    SectionRead::Section {
        tag,
        payload: &bytes[pos + SECTION_HEADER_LEN..body_end],
        end: pos + total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn sink_packs_msb_first() {
        let mut s = BitSink::new();
        s.push_bit(true);
        s.put_bits(0b011, 3);
        assert_eq!(s.bit_len(), 4);
        assert_eq!(s.bytes(), &[0b1011_0000]);
        s.clear();
        s.put_u64(0x0123_4567_89ab_cdef);
        assert_eq!(s.bytes(), 0x0123_4567_89ab_cdefu64.to_be_bytes().as_slice());
    }

    #[test]
    fn put_bytes_respects_bit_phase() {
        let mut s = BitSink::new();
        s.put_bytes(&[0xAB, 0xCD]);
        assert_eq!(s.bytes(), &[0xAB, 0xCD]);
        s.clear();
        s.push_bit(true);
        s.put_bytes(&[0xFF]);
        assert_eq!(s.bytes(), &[0b1111_1111, 0b1000_0000]);
    }

    #[test]
    fn source_round_trips_sink() {
        let mut s = BitSink::new();
        s.put_gamma(1);
        s.put_gamma(9);
        s.put_gamma0(0);
        s.put_u64(u64::MAX);
        s.put_gamma(u64::MAX);
        let bytes = s.bytes().to_vec();
        let mut r = BitSource::new(&bytes);
        assert_eq!(r.get_gamma(), Some(1));
        assert_eq!(r.get_gamma(), Some(9));
        assert_eq!(r.get_gamma0(), Some(0));
        assert_eq!(r.get_u64(), Some(u64::MAX));
        assert_eq!(r.get_gamma(), Some(u64::MAX));
    }

    #[test]
    fn source_reads_are_total() {
        let mut r = BitSource::new(&[0x00]);
        // 8 zeros: gamma decode runs off the end -> None, no panic.
        assert_eq!(r.get_gamma(), None);
        let mut r = BitSource::new(&[0xFF]);
        assert_eq!(r.read_bits(9), None);
        assert_eq!(r.position_bits(), 0, "failed read must not consume");
        assert_eq!(r.read_bits(8), Some(0xFF));
        // 64+ zeros then a one: adversarial gamma length claim.
        let mut bytes = vec![0u8; 9];
        bytes[8] = 0x80;
        let mut r = BitSource::new(&bytes);
        assert_eq!(r.get_gamma(), None);
    }

    #[test]
    fn source_alignment_at_all_phases() {
        let bytes = [0xAA, 0x55];
        for phase in 0..=8usize {
            let mut r = BitSource::new(&bytes);
            for _ in 0..phase {
                r.read_bit();
            }
            r.align_to_byte();
            let expect = if phase == 0 { 0 } else { 8 };
            assert_eq!(r.position_bits(), expect, "phase {phase}");
            assert_eq!(r.remaining_bits(), 16 - expect);
        }
    }

    #[test]
    fn section_round_trip_and_end() {
        let mut buf = Vec::new();
        write_section(&mut buf, 0x01, b"hello");
        write_section(&mut buf, 0x02, b"");
        let SectionRead::Section { tag, payload, end } = read_section(&buf, 0) else {
            panic!("expected section");
        };
        assert_eq!((tag, payload), (0x01, b"hello".as_slice()));
        let SectionRead::Section { tag, payload, end } = read_section(&buf, end) else {
            panic!("expected second section");
        };
        assert_eq!((tag, payload.len()), (0x02, 0));
        assert_eq!(read_section(&buf, end), SectionRead::End);
    }

    #[test]
    fn corrupt_section_is_skippable() {
        let mut buf = Vec::new();
        write_section(&mut buf, 0x01, b"aaaa");
        write_section(&mut buf, 0x02, b"bbbb");
        let first_end = match read_section(&buf, 0) {
            SectionRead::Section { end, .. } => end,
            other => panic!("{other:?}"),
        };
        // Flip a payload bit in the first section.
        buf[SECTION_HEADER_LEN] ^= 0x01;
        match read_section(&buf, 0) {
            SectionRead::Corrupt { skip_to } => assert_eq!(skip_to, first_end),
            other => panic!("{other:?}"),
        }
        // Resync lands on the intact second section.
        match read_section(&buf, first_end) {
            SectionRead::Section { tag, payload, .. } => {
                assert_eq!((tag, payload), (0x02, b"bbbb".as_slice()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_anywhere_is_torn() {
        let mut buf = Vec::new();
        write_section(&mut buf, 0x01, b"payload");
        for cut in 1..buf.len() {
            assert_eq!(read_section(&buf[..cut], 0), SectionRead::Torn, "cut {cut}");
        }
        assert!(matches!(read_section(&buf, 0), SectionRead::Section { .. }));
        // A length prefix pointing far out of bounds is torn, not a panic.
        let huge = [0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(read_section(&huge, 0), SectionRead::Torn);
    }

    proptest! {
        #[test]
        fn gamma_round_trips(v in 1u64..u64::MAX) {
            let mut s = BitSink::new();
            s.put_gamma(v);
            let bytes = s.bytes().to_vec();
            let mut r = BitSource::new(&bytes);
            prop_assert_eq!(r.get_gamma(), Some(v));
        }

        #[test]
        fn read_section_is_total_on_garbage(raw in prop::collection::vec(0u16..256, 0..64), pos in 0usize..80) {
            // Must terminate with one of the four variants, never panic.
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let _ = read_section(&bytes, pos);
        }

        #[test]
        fn source_decoders_are_total_on_garbage(raw in prop::collection::vec(0u16..256, 0..32)) {
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let mut r = BitSource::new(&bytes);
            let mut last = r.position_bits();
            while let Some(v) = r.get_gamma() {
                prop_assert!(v >= 1);
                prop_assert!(r.position_bits() > last, "decoder must make progress");
                last = r.position_bits();
            }
        }
    }
}
