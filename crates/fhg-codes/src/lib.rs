//! # fhg-codes
//!
//! Prefix-free integer codes and the iterated-logarithm machinery used by the
//! colour-bound scheduler of the Family Holiday Gathering paper (§4).
//!
//! The paper's periodic colour-bound algorithm assigns every colour `c` a
//! prefix-free codeword; a node with colour `c` is happy at holiday `i`
//! exactly when the *reversed* codeword is a suffix of the binary
//! representation of `i`.  Because the code is prefix-free, no two different
//! colours can ever be happy at the same holiday, and the schedule of colour
//! `c` is perfectly periodic with period `2^|code(c)|`.
//!
//! This crate provides:
//!
//! * [`Codeword`] and [`BitReader`] — bit-level representation of codewords
//!   and streaming decoding.
//! * [`unary`], [`elias`] — the unary code and the Elias gamma, delta and
//!   omega universal codes with encoders, decoders and length functions
//!   (`ρ(i)` for omega, as used in Theorem 4.2).
//! * [`iterlog`] — iterated logarithms `log^{(i)}`, `log*` and the paper's
//!   `φ(c) = ∏_{i=0}^{log* c} log^{(i)} c` function (Definition 4.1), plus
//!   the Cauchy-condensation series used in the Theorem 4.1 lower bound.
//! * [`schedule`] — the holiday-number ↔ colour mapping of the Algorithm
//!   Scheme in §4: each codeword becomes an arithmetic progression
//!   `offset + k·period`.
//! * [`wire`] — the packed, endian-stable byte substrate (bit sinks/sources,
//!   FNV-1a checksums, length-prefixed sections) used by the serving tier's
//!   durable snapshot + write-ahead-log format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod elias;
pub mod iterlog;
pub mod schedule;
pub mod unary;
pub mod wire;

pub use bits::{BitReader, Codeword};
pub use elias::{EliasCode, EliasKind};
pub use iterlog::{ceil_log2, iterated_log, log_star, phi, rho_omega};
pub use schedule::{CodeSchedule, SlotAssignment};
pub use unary::UnaryCode;

/// A prefix-free code over the positive integers `1, 2, 3, …`.
///
/// Implementations must guarantee that no codeword is a prefix of another;
/// this property is what makes the §4 scheduler conflict-free, and it is
/// checked by property tests for every implementation in this crate.
pub trait PrefixFreeCode {
    /// Encodes a positive integer into a codeword.
    ///
    /// # Panics
    /// Implementations panic if `value == 0` (the codes are defined on `n ≥ 1`).
    fn encode(&self, value: u64) -> Codeword;

    /// Decodes a single codeword from the reader, returning the value.
    ///
    /// Returns `None` if the reader does not contain a complete codeword.
    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64>;

    /// Length in bits of the codeword for `value`, without materialising it.
    fn code_len(&self, value: u64) -> usize {
        self.encode(value).len()
    }

    /// Human-readable name for experiment tables.
    fn name(&self) -> &'static str;
}
