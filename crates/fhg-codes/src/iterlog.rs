//! Iterated logarithms, `log*`, the paper's `φ` function and `ρ`.
//!
//! Definition 4.1 of the paper defines
//!
//! ```text
//! φ(i) = 1              if i <= 1
//! φ(i) = i · φ(log i)   if i > 1
//! ```
//!
//! explicitly `φ(i) = i · log i · log log i · … · 1 = ∏_{j=0}^{log* i} log^{(j)} i`.
//! Theorem 4.1 shows that any colour-bound schedule must have period
//! `Ω(φ(c))` for colour `c` (via the Cauchy condensation test), and
//! Theorem 4.2 shows the Elias-omega schedule achieves period
//! `2^ρ(c) ≤ 2^{1 + log* c} · φ(c)`.
//!
//! All logarithms are base 2, matching the paper.

/// `⌈log2(n)⌉` for `n ≥ 1` — the exponent `j` used by the §5 algorithm in the
/// form `j = ⌈log(d + 1)⌉` so that a node of degree `d` gets period `2^j ≤ 2d`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn ceil_log2(n: u64) -> u32 {
    assert!(n >= 1, "ceil_log2 is defined for n >= 1");
    if n == 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// `⌊log2(n)⌋` for `n ≥ 1`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn floor_log2(n: u64) -> u32 {
    assert!(n >= 1, "floor_log2 is defined for n >= 1");
    63 - n.leading_zeros()
}

/// The `i`-times iterated base-2 logarithm `log^{(i)}(x)`.
///
/// `log^{(0)}(x) = x`; once the value drops to `<= 1` (or becomes
/// non-positive) further iterations return it unchanged, mirroring the
/// convention `φ(i) = 1` for `i ≤ 1`.
pub fn iterated_log(x: f64, i: u32) -> f64 {
    let mut v = x;
    for _ in 0..i {
        if v <= 1.0 {
            return v;
        }
        v = v.log2();
    }
    v
}

/// `log*(x)`: the number of times `log2` must be applied to `x` before the
/// result is at most 1.  `log*(x) = 0` for `x ≤ 1`.
pub fn log_star(x: f64) -> u32 {
    let mut v = x;
    let mut count = 0;
    while v > 1.0 {
        v = v.log2();
        count += 1;
        if count > 10 {
            // log* of anything representable in f64 is at most 5; this guard
            // protects against NaN-ish inputs looping forever.
            break;
        }
    }
    count
}

/// The paper's `φ` function (Definition 4.1):
/// `φ(i) = i · log i · log log i · … ` down to 1.
///
/// Returns 1.0 for `i ≤ 1`.
pub fn phi(i: f64) -> f64 {
    if i <= 1.0 {
        1.0
    } else {
        i * phi(i.log2())
    }
}

/// `ρ(i)`: the length in bits of the Elias omega code of `i` (Theorem 4.2 /
/// Appendix B).  Computed from the recursive group structure, so it is exact
/// rather than the paper's ceil-approximation.
///
/// # Panics
/// Panics if `i == 0`.
pub fn rho_omega(i: u64) -> u32 {
    assert!(i >= 1, "rho is defined for i >= 1");
    let mut len = 1u32; // terminating zero
    let mut n = i;
    while n > 1 {
        let bits = 64 - n.leading_zeros();
        len += bits;
        n = u64::from(bits) - 1;
    }
    len
}

/// Partial sum `Σ_{c=1}^{limit} 1 / f(c)` for an arbitrary period function.
///
/// Theorem 4.1's proof shows any feasible colour-bound schedule must satisfy
/// `Σ_c 1/f(c) ≤ 1`.  The experiment harness uses this to demonstrate that
/// `f(c) = c` diverges (so linear periods are impossible), `f(c) = φ(c)`
/// diverges just barely (it is the Cauchy-condensation threshold), while the
/// achievable `f(c) = 2^ρ(c)` converges below 1.
pub fn reciprocal_sum(f: impl Fn(u64) -> f64, limit: u64) -> f64 {
    (1..=limit).map(|c| 1.0 / f(c)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EliasCode, PrefixFreeCode};
    use proptest::prelude::*;

    #[test]
    fn ceil_log2_known_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(ceil_log2(u64::MAX), 64);
    }

    #[test]
    fn floor_log2_known_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(1023), 9);
        assert_eq!(floor_log2(1024), 10);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn ceil_log2_zero_panics() {
        ceil_log2(0);
    }

    #[test]
    fn iterated_log_values() {
        assert_eq!(iterated_log(65536.0, 0), 65536.0);
        assert_eq!(iterated_log(65536.0, 1), 16.0);
        assert_eq!(iterated_log(65536.0, 2), 4.0);
        assert_eq!(iterated_log(65536.0, 3), 2.0);
        assert_eq!(iterated_log(65536.0, 4), 1.0);
        assert_eq!(iterated_log(65536.0, 5), 1.0, "stable once at 1");
        assert_eq!(iterated_log(0.5, 3), 0.5, "values below 1 are fixed points");
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(0.0), 0);
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(f64::MAX), 5);
    }

    #[test]
    fn phi_known_values() {
        assert_eq!(phi(0.0), 1.0);
        assert_eq!(phi(1.0), 1.0);
        assert_eq!(phi(2.0), 2.0);
        assert_eq!(phi(4.0), 8.0);
        assert_eq!(phi(16.0), 16.0 * 8.0);
        assert_eq!(phi(65536.0), 65536.0 * phi(16.0));
        // Non-power-of-two: φ(10) = 10 · log2(10) · φ(log2 log2 10)…
        let expected = 10.0 * 10f64.log2() * 10f64.log2().log2() * phi(10f64.log2().log2().log2());
        assert!((phi(10.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn phi_is_monotone_and_superlinear() {
        let mut prev = 0.0;
        for c in 2..10_000u64 {
            let value = phi(c as f64);
            assert!(value >= prev, "phi must be monotone at {c}");
            assert!(value >= c as f64, "phi(c) >= c at {c}");
            prev = value;
        }
    }

    #[test]
    fn rho_matches_actual_omega_code_length() {
        let omega = EliasCode::omega();
        for i in 1..5000u64 {
            assert_eq!(rho_omega(i) as usize, omega.code_len(i), "rho({i})");
        }
        for &i in &[1u64 << 20, 1 << 40, u64::MAX] {
            assert_eq!(rho_omega(i) as usize, omega.code_len(i));
        }
    }

    #[test]
    fn theorem_4_2_bound_holds() {
        // 2^ρ(c) ≤ 2^{1 + log* c} · φ(c) for every colour c.
        for c in 1..100_000u64 {
            let period = 2f64.powi(rho_omega(c) as i32);
            let bound = 2f64.powi(1 + log_star(c as f64) as i32) * phi(c as f64);
            assert!(
                period <= bound * (1.0 + 1e-9),
                "Theorem 4.2 violated at c={c}: period {period} > bound {bound}"
            );
        }
    }

    #[test]
    fn cauchy_condensation_behaviour() {
        // Σ 1/c diverges: already above 1 by c = 2.
        assert!(reciprocal_sum(|c| c as f64, 10) > 1.0);
        // Σ 1/c^2 converges to π²/6 ≈ 1.645 > 1, but Σ 1/(2 c^2) stays below 1.
        assert!(reciprocal_sum(|c| 2.0 * (c * c) as f64, 100_000) < 1.0);
        // The omega-code periods are feasible: Σ 1/2^ρ(c) ≤ 1 (Kraft inequality).
        let omega_sum = reciprocal_sum(|c| 2f64.powi(rho_omega(c) as i32), 1_000_000);
        assert!(omega_sum <= 1.0, "Kraft sum {omega_sum} exceeds 1");
        // φ itself is the divergence threshold: its reciprocal sum keeps
        // growing (slowly) and exceeds 1 well before 10^6.
        assert!(reciprocal_sum(|c| phi(c as f64), 1_000_000) > 1.0);
    }

    proptest! {
        #[test]
        fn ceil_and_floor_log_relationship(n in 2u64..u64::MAX / 2) {
            let c = ceil_log2(n);
            let f = floor_log2(n);
            prop_assert!(c == f || c == f + 1);
            prop_assert!(2f64.powi(c as i32) >= n as f64);
            prop_assert!((1u128 << f) <= n as u128);
            if n.is_power_of_two() {
                prop_assert_eq!(c, f);
            }
        }

        #[test]
        fn phi_recursion_identity(c in 2u64..1_000_000u64) {
            let x = c as f64;
            prop_assert!((phi(x) - x * phi(x.log2())).abs() / phi(x) < 1e-12);
        }

        #[test]
        fn rho_is_nondecreasing_in_blocks(i in 1u64..1_000_000u64) {
            // ρ is non-decreasing when moving to the next power-of-two block.
            let next_pow = (i + 1).next_power_of_two();
            prop_assert!(rho_omega(i) <= rho_omega(next_pow));
        }
    }
}
