//! The unary code: the simplest prefix-free code.
//!
//! `n` is encoded as `n - 1` ones followed by a terminating zero, so
//! `|code(n)| = n`.  Used in the experiments as the *worst* reasonable
//! prefix-free code: plugging it into the §4 scheduler gives a node of colour
//! `c` a period of `2^c`, wildly worse than the Elias omega period of
//! `2^ρ(c) ≈ 2·φ(c)` — the gap Experiment E2's ablation quantifies.

use crate::bits::{BitReader, Codeword};
use crate::PrefixFreeCode;

/// The unary prefix-free code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnaryCode;

impl PrefixFreeCode for UnaryCode {
    fn encode(&self, value: u64) -> Codeword {
        assert!(value >= 1, "unary code is defined for n >= 1, got {value}");
        let mut bits = vec![true; (value - 1) as usize];
        bits.push(false);
        Codeword::from_bits(bits)
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64> {
        let mut count = 1u64;
        loop {
            match reader.read_bit()? {
                true => count += 1,
                false => return Some(count),
            }
        }
    }

    fn code_len(&self, value: u64) -> usize {
        assert!(value >= 1, "unary code is defined for n >= 1, got {value}");
        value as usize
    }

    fn name(&self) -> &'static str {
        "unary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_codewords() {
        let c = UnaryCode;
        assert_eq!(c.encode(1).to_string(), "0");
        assert_eq!(c.encode(2).to_string(), "10");
        assert_eq!(c.encode(5).to_string(), "11110");
        assert_eq!(c.code_len(7), 7);
        assert_eq!(c.name(), "unary");
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn zero_rejected() {
        UnaryCode.encode(0);
    }

    #[test]
    fn decode_stream_of_codewords() {
        let c = UnaryCode;
        let stream = c.encode(3).concat(&c.encode(1)).concat(&c.encode(4));
        let mut r = BitReader::new(&stream);
        assert_eq!(c.decode(&mut r), Some(3));
        assert_eq!(c.decode(&mut r), Some(1));
        assert_eq!(c.decode(&mut r), Some(4));
        assert!(r.is_exhausted());
        assert_eq!(c.decode(&mut r), None);
    }

    #[test]
    fn truncated_codeword_fails_to_decode() {
        let partial = Codeword::parse("111");
        let mut r = BitReader::new(&partial);
        assert_eq!(UnaryCode.decode(&mut r), None);
    }

    proptest! {
        #[test]
        fn roundtrip(value in 1u64..2000) {
            let c = UnaryCode;
            let code = c.encode(value);
            prop_assert_eq!(code.len(), c.code_len(value));
            let mut r = BitReader::new(&code);
            prop_assert_eq!(c.decode(&mut r), Some(value));
            prop_assert!(r.is_exhausted());
        }

        #[test]
        fn prefix_free(a in 1u64..300, b in 1u64..300) {
            prop_assume!(a != b);
            let c = UnaryCode;
            prop_assert!(!c.encode(a).is_prefix_of(&c.encode(b)));
        }

        #[test]
        fn decode_is_total_on_garbage_bitstreams(raw in prop::collection::vec(0u8..2, 0..512)) {
            let bits: Vec<bool> = raw.iter().map(|&b| b == 1).collect();
            // Arbitrary bits: every successful decode consumes at least one
            // bit and a truncated run of ones yields None, never a panic.
            let stream = Codeword::from_bits(bits.iter().copied());
            let mut r = BitReader::new(&stream);
            let mut last = r.position();
            while let Some(v) = UnaryCode.decode(&mut r) {
                prop_assert!(v >= 1);
                prop_assert!(r.position() > last);
                last = r.position();
            }
            prop_assert!(r.is_exhausted());
        }
    }
}
