//! The holiday-number ↔ colour mapping of the paper's §4 Algorithm Scheme.
//!
//! Given any prefix-free code, colour `c` is happy at holiday `i` exactly
//! when the reversed codeword of `c` is a suffix of the binary representation
//! of `i`.  Equivalently (and this is how we implement it), colour `c` owns
//! the arithmetic progression `offset(c) + k · 2^{len(c)}` where `offset(c)`
//! is the codeword of `c` read with its first bit as the least significant
//! bit.  Prefix-freeness guarantees the progressions of distinct colours are
//! disjoint, and each colour's schedule is perfectly periodic with period
//! `2^{len(c)}`.

use crate::PrefixFreeCode;

/// The perfectly periodic slot owned by one colour: all holidays
/// `≡ offset (mod period)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotAssignment {
    /// Residue of the owned holidays.
    pub offset: u64,
    /// Period between consecutive owned holidays; always a power of two for
    /// code-derived slots.
    pub period: u64,
}

impl SlotAssignment {
    /// Creates a slot; `offset` is reduced modulo `period`.
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn new(offset: u64, period: u64) -> Self {
        assert!(period > 0, "slot period must be positive");
        SlotAssignment { offset: offset % period, period }
    }

    /// Whether the slot owns `holiday`.
    pub fn contains(&self, holiday: u64) -> bool {
        holiday % self.period == self.offset
    }

    /// The first owned holiday at or after `holiday`.
    pub fn next_at_or_after(&self, holiday: u64) -> u64 {
        let r = holiday % self.period;
        if r <= self.offset {
            holiday + (self.offset - r)
        } else {
            holiday + (self.period - r) + self.offset
        }
    }

    /// Longest possible gap between consecutive happy holidays, i.e. the
    /// worst-case unhappiness interval this slot can cause: `period - 1`.
    pub fn max_unhappiness(&self) -> u64 {
        self.period - 1
    }

    /// Whether two slots ever own the same holiday (CRT-style check).
    pub fn conflicts_with(&self, other: &SlotAssignment) -> bool {
        let g = gcd(self.period, other.period);
        self.offset % g == other.offset % g
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A colour → slot mapping induced by a prefix-free code, i.e. the paper's §4
/// "Algorithm Scheme" specialised to suffix matching of reversed codewords.
#[derive(Debug, Clone)]
pub struct CodeSchedule<C> {
    code: C,
}

impl<C: PrefixFreeCode> CodeSchedule<C> {
    /// Wraps a prefix-free code.
    pub fn new(code: C) -> Self {
        CodeSchedule { code }
    }

    /// The underlying code.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// The slot owned by `color` (colours are positive integers).
    pub fn slot(&self, color: u64) -> SlotAssignment {
        let cw = self.code.encode(color);
        let len = cw.len();
        assert!(len < 64, "codeword of colour {color} is too long for a u64 period");
        SlotAssignment { offset: cw.to_u64_lsb_first(), period: 1u64 << len }
    }

    /// Whether `color` is happy at `holiday` (the `decode(i) = col(p)` test).
    pub fn is_happy(&self, color: u64, holiday: u64) -> bool {
        self.slot(color).contains(holiday)
    }

    /// The colour (if any) that owns `holiday`, searching colours
    /// `1..=max_color`.  The §4 scheme guarantees at most one owner exists.
    pub fn owner_of_holiday(&self, holiday: u64, max_color: u64) -> Option<u64> {
        (1..=max_color).find(|&c| self.is_happy(c, holiday))
    }

    /// Verifies that no two distinct colours in `1..=max_color` ever own the
    /// same holiday.  Returns the first conflicting pair if one exists.
    pub fn find_conflict(&self, max_color: u64) -> Option<(u64, u64)> {
        let slots: Vec<SlotAssignment> = (1..=max_color).map(|c| self.slot(c)).collect();
        for i in 0..slots.len() {
            for j in (i + 1)..slots.len() {
                if slots[i].conflicts_with(&slots[j]) {
                    return Some((i as u64 + 1, j as u64 + 1));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EliasCode, UnaryCode};
    use proptest::prelude::*;

    #[test]
    fn slot_membership_and_next() {
        let s = SlotAssignment::new(3, 8);
        assert!(s.contains(3));
        assert!(s.contains(11));
        assert!(!s.contains(4));
        assert_eq!(s.max_unhappiness(), 7);
        assert_eq!(s.next_at_or_after(0), 3);
        assert_eq!(s.next_at_or_after(3), 3);
        assert_eq!(s.next_at_or_after(4), 11);
        assert_eq!(s.next_at_or_after(11), 11);
        assert_eq!(s.next_at_or_after(12), 19);
    }

    #[test]
    fn slot_offset_is_reduced() {
        let s = SlotAssignment::new(13, 8);
        assert_eq!(s.offset, 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        SlotAssignment::new(0, 0);
    }

    #[test]
    fn conflict_detection_matches_enumeration() {
        let a = SlotAssignment::new(1, 4);
        let b = SlotAssignment::new(3, 8);
        let c = SlotAssignment::new(5, 8);
        // 1 mod 4 = {1,5,9,13,...}; 3 mod 8 = {3,11,...} disjoint; 5 mod 8 = {5,13,...} overlaps.
        assert!(!a.conflicts_with(&b));
        assert!(a.conflicts_with(&c));
        assert!(!b.conflicts_with(&c));
        assert!(a.conflicts_with(&a));
    }

    #[test]
    fn omega_schedule_periods_match_rho() {
        let sched = CodeSchedule::new(EliasCode::omega());
        for c in 1..200u64 {
            let slot = sched.slot(c);
            assert_eq!(slot.period, 1u64 << crate::rho_omega(c));
        }
    }

    #[test]
    fn omega_schedule_has_no_conflicts() {
        let sched = CodeSchedule::new(EliasCode::omega());
        assert_eq!(sched.find_conflict(300), None);
    }

    #[test]
    fn unary_schedule_has_no_conflicts_but_huge_periods() {
        let sched = CodeSchedule::new(UnaryCode);
        assert_eq!(sched.find_conflict(40), None);
        assert_eq!(sched.slot(10).period, 1 << 10);
    }

    #[test]
    fn owner_of_holiday_is_unique_and_consistent() {
        let sched = CodeSchedule::new(EliasCode::omega());
        for holiday in 0..256u64 {
            if let Some(owner) = sched.owner_of_holiday(holiday, 64) {
                assert!(sched.is_happy(owner, holiday));
                // No other colour owns it.
                for c in 1..=64u64 {
                    if c != owner {
                        assert!(!sched.is_happy(c, holiday), "holiday {holiday}: {c} and {owner}");
                    }
                }
            }
        }
    }

    #[test]
    fn paper_example_color_one_has_period_two() {
        // ω(1) = "0": offset 0, period 2 → happy every other holiday, the
        // best any colour can do under the omega schedule.
        let sched = CodeSchedule::new(EliasCode::omega());
        let slot = sched.slot(1);
        assert_eq!(slot.period, 2);
        assert_eq!(slot.offset, 0);
    }

    proptest! {
        #[test]
        fn happiness_is_periodic(color in 1u64..500, k in 0u64..1_000) {
            let sched = CodeSchedule::new(EliasCode::omega());
            let slot = sched.slot(color);
            prop_assert!(sched.is_happy(color, slot.offset + k * slot.period));
        }

        #[test]
        fn gamma_and_delta_schedules_also_conflict_free(holiday in 0u64..100_000u64) {
            for code in [EliasCode::gamma(), EliasCode::delta()] {
                let sched = CodeSchedule::new(code);
                let happy: Vec<u64> = (1..=100u64).filter(|&c| sched.is_happy(c, holiday)).collect();
                prop_assert!(happy.len() <= 1, "{:?} happy at {holiday}", happy);
            }
        }

        #[test]
        fn next_at_or_after_is_correct(offset in 0u64..64, exp in 1u32..10, start in 0u64..10_000) {
            let s = SlotAssignment::new(offset, 1 << exp);
            let next = s.next_at_or_after(start);
            prop_assert!(next >= start);
            prop_assert!(s.contains(next));
            prop_assert!(next - start < s.period);
        }
    }
}
