//! The Elias universal codes: gamma, delta and omega.
//!
//! The paper's §4.2 scheduler uses the Elias **omega** code because its
//! codeword length `ρ(c)` is within an additive `log* c` of the
//! Cauchy-condensation lower bound of Theorem 4.1.  Gamma and delta are
//! implemented as ablation points (they are also prefix-free, so they also
//! give correct — just longer-period — schedules).

use crate::bits::{BitReader, Codeword};
use crate::PrefixFreeCode;

/// Which Elias code to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EliasKind {
    /// Elias gamma: unary length prefix + binary value; `|γ(n)| = 2⌊log n⌋ + 1`.
    Gamma,
    /// Elias delta: gamma-coded length + binary value without its leading 1.
    Delta,
    /// Elias omega: recursively length-prefixed binary groups + terminating 0.
    /// The code of Theorem 4.2 with `|ω(n)| = ρ(n)`.
    Omega,
}

/// An Elias prefix-free code of a particular [`EliasKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EliasCode {
    kind: EliasKind,
}

impl EliasCode {
    /// The Elias gamma code.
    pub fn gamma() -> Self {
        EliasCode { kind: EliasKind::Gamma }
    }

    /// The Elias delta code.
    pub fn delta() -> Self {
        EliasCode { kind: EliasKind::Delta }
    }

    /// The Elias omega code (the code used in Theorem 4.2).
    pub fn omega() -> Self {
        EliasCode { kind: EliasKind::Omega }
    }

    /// Creates a code of the given kind.
    pub fn new(kind: EliasKind) -> Self {
        EliasCode { kind }
    }

    /// The code's kind.
    pub fn kind(&self) -> EliasKind {
        self.kind
    }

    fn encode_gamma(value: u64) -> Codeword {
        let bin = Codeword::binary(value);
        let mut bits = vec![false; bin.len() - 1];
        bits.extend_from_slice(bin.bits());
        Codeword::from_bits(bits)
    }

    fn decode_gamma(reader: &mut BitReader<'_>) -> Option<u64> {
        let mut zeros = 0usize;
        while !reader.read_bit()? {
            zeros += 1;
        }
        if zeros > 63 {
            return None;
        }
        let rest = reader.read_bits(zeros)?;
        Some((1u64 << zeros) | rest)
    }

    fn encode_delta(value: u64) -> Codeword {
        let bin = Codeword::binary(value);
        let len_code = Self::encode_gamma(bin.len() as u64);
        // Binary value without its leading 1.
        let tail = Codeword::from_bits(bin.bits()[1..].iter().copied());
        len_code.concat(&tail)
    }

    fn decode_delta(reader: &mut BitReader<'_>) -> Option<u64> {
        let len = Self::decode_gamma(reader)?;
        if len == 0 || len > 64 {
            return None;
        }
        let tail = reader.read_bits((len - 1) as usize)?;
        Some((1u64 << (len - 1)) | tail)
    }

    /// The recursive `re(i)` string of the paper's Appendix B, i.e. the omega
    /// code without its terminating zero.
    fn omega_re(value: u64) -> Codeword {
        if value <= 1 {
            return Codeword::empty();
        }
        let bin = Codeword::binary(value);
        Self::omega_re(bin.len() as u64 - 1).concat(&bin)
    }

    fn encode_omega(value: u64) -> Codeword {
        let mut code = Self::omega_re(value);
        code.push(false);
        code
    }

    fn decode_omega(reader: &mut BitReader<'_>) -> Option<u64> {
        let mut n: u64 = 1;
        loop {
            match reader.read_bit()? {
                false => return Some(n),
                true => {
                    // Overflow guard for the length chain: the next group
                    // would be read as `(1 << n) | rest`, so any chain value
                    // n >= 64 — which an adversarial stream can claim with a
                    // handful of bytes (e.g. "11 1111110 …") — must be
                    // rejected here, *before* the shift, or `1u64 << n`
                    // would overflow.  Legitimate codewords for values up to
                    // u64::MAX never push the chain past 64.
                    if n >= 64 {
                        return None;
                    }
                    let rest = reader.read_bits(n as usize)?;
                    n = (1u64 << n) | rest;
                }
            }
        }
    }
}

impl PrefixFreeCode for EliasCode {
    fn encode(&self, value: u64) -> Codeword {
        assert!(value >= 1, "Elias codes are defined for n >= 1, got {value}");
        match self.kind {
            EliasKind::Gamma => Self::encode_gamma(value),
            EliasKind::Delta => Self::encode_delta(value),
            EliasKind::Omega => Self::encode_omega(value),
        }
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64> {
        match self.kind {
            EliasKind::Gamma => Self::decode_gamma(reader),
            EliasKind::Delta => Self::decode_delta(reader),
            EliasKind::Omega => Self::decode_omega(reader),
        }
    }

    fn code_len(&self, value: u64) -> usize {
        assert!(value >= 1, "Elias codes are defined for n >= 1, got {value}");
        let bitlen = |n: u64| (64 - n.leading_zeros()) as usize;
        match self.kind {
            EliasKind::Gamma => 2 * bitlen(value) - 1,
            EliasKind::Delta => {
                let l = bitlen(value);
                (l - 1) + 2 * bitlen(l as u64) - 1
            }
            EliasKind::Omega => {
                let mut len = 1usize; // terminating zero
                let mut n = value;
                while n > 1 {
                    let b = bitlen(n);
                    len += b;
                    n = b as u64 - 1;
                }
                len
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.kind {
            EliasKind::Gamma => "elias-gamma",
            EliasKind::Delta => "elias-delta",
            EliasKind::Omega => "elias-omega",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's Appendix B table: omega codes of 1..=15.
    const PAPER_OMEGA_TABLE: [&str; 15] = [
        "0",
        "10 0",
        "11 0",
        "10 100 0",
        "10 101 0",
        "10 110 0",
        "10 111 0",
        "11 1000 0",
        "11 1001 0",
        "11 1010 0",
        "11 1011 0",
        "11 1100 0",
        "11 1101 0",
        "11 1110 0",
        "11 1111 0",
    ];

    #[test]
    fn omega_matches_paper_table() {
        let omega = EliasCode::omega();
        for (i, expected) in PAPER_OMEGA_TABLE.iter().enumerate() {
            let value = i as u64 + 1;
            assert_eq!(
                omega.encode(value),
                Codeword::parse(expected),
                "omega({value}) mismatch with the paper's Appendix B table"
            );
        }
    }

    #[test]
    fn omega_paper_worked_example_for_nine() {
        // Appendix B: re(9) = λ ∘ 11 ∘ 1001, omega code 11 1001 0.
        let omega = EliasCode::omega();
        assert_eq!(omega.encode(9).to_string(), "1110010");
        assert_eq!(omega.code_len(9), 7);
    }

    #[test]
    fn gamma_known_codewords() {
        let gamma = EliasCode::gamma();
        assert_eq!(gamma.encode(1).to_string(), "1");
        assert_eq!(gamma.encode(2).to_string(), "010");
        assert_eq!(gamma.encode(3).to_string(), "011");
        assert_eq!(gamma.encode(4).to_string(), "00100");
        assert_eq!(gamma.encode(10).to_string(), "0001010");
        assert_eq!(gamma.code_len(10), 7);
    }

    #[test]
    fn delta_known_codewords() {
        let delta = EliasCode::delta();
        assert_eq!(delta.encode(1).to_string(), "1");
        assert_eq!(delta.encode(2).to_string(), "0100");
        assert_eq!(delta.encode(3).to_string(), "0101");
        assert_eq!(delta.encode(8).to_string(), "00100000");
        assert_eq!(delta.encode(9).to_string(), "00100001");
        assert_eq!(delta.code_len(9), 8);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn encode_zero_panics() {
        EliasCode::omega().encode(0);
    }

    #[test]
    fn decode_concatenated_stream() {
        for code in [EliasCode::gamma(), EliasCode::delta(), EliasCode::omega()] {
            let values = [1u64, 9, 2, 100, 7, 1_000_000, 3];
            let mut stream = Codeword::empty();
            for &v in &values {
                stream = stream.concat(&code.encode(v));
            }
            let mut reader = BitReader::new(&stream);
            for &v in &values {
                assert_eq!(code.decode(&mut reader), Some(v), "{} decode", code.name());
            }
            assert!(reader.is_exhausted());
            assert_eq!(code.decode(&mut reader), None);
        }
    }

    #[test]
    fn truncated_codewords_fail_gracefully() {
        for code in [EliasCode::gamma(), EliasCode::delta(), EliasCode::omega()] {
            let full = code.encode(1_000);
            let truncated = Codeword::from_bits(full.bits()[..full.len() - 1].iter().copied());
            let mut reader = BitReader::new(&truncated);
            assert_eq!(code.decode(&mut reader), None, "{}", code.name());
        }
    }

    #[test]
    fn names_and_kinds() {
        assert_eq!(EliasCode::gamma().name(), "elias-gamma");
        assert_eq!(EliasCode::delta().name(), "elias-delta");
        assert_eq!(EliasCode::omega().name(), "elias-omega");
        assert_eq!(EliasCode::new(EliasKind::Delta).kind(), EliasKind::Delta);
    }

    #[test]
    fn omega_code_growth_is_sublinear_in_gamma() {
        // For large values omega is shorter than gamma: ρ(n) ≈ log n + log log n
        // versus 2 log n + 1.
        let omega = EliasCode::omega();
        let gamma = EliasCode::gamma();
        for &v in &[1u64 << 20, 1 << 30, 1 << 40, 1 << 62] {
            assert!(omega.code_len(v) < gamma.code_len(v));
        }
    }

    fn all_codes() -> Vec<EliasCode> {
        vec![EliasCode::gamma(), EliasCode::delta(), EliasCode::omega()]
    }

    #[test]
    fn adversarial_max_length_claims_are_rejected() {
        // Gamma: 64+ zeros claim a 65-bit value.
        let gamma_claim = Codeword::from_bits(
            std::iter::repeat_n(false, 64).chain(std::iter::repeat_n(true, 70)),
        );
        assert_eq!(EliasCode::gamma().decode(&mut BitReader::new(&gamma_claim)), None);

        // Delta: gamma-coded length of 65 claims a 65-bit binary tail.
        let mut delta_claim = EliasCode::gamma().encode(65);
        for _ in 0..70 {
            delta_claim.push(true);
        }
        assert_eq!(EliasCode::delta().decode(&mut BitReader::new(&delta_claim)), None);

        // Omega: a run of ones drives the length chain past 64 — the next
        // group read would shift-overflow without the explicit n >= 64 cap.
        let mut omega_claim = Codeword::parse("11 1111110");
        for _ in 0..256 {
            omega_claim.push(true);
        }
        omega_claim.push(false);
        assert_eq!(EliasCode::omega().decode(&mut BitReader::new(&omega_claim)), None);
    }

    proptest! {
        #[test]
        fn roundtrip(value in 1u64..u64::MAX / 4) {
            for code in all_codes() {
                let cw = code.encode(value);
                prop_assert_eq!(cw.len(), code.code_len(value), "{} length formula", code.name());
                let mut reader = BitReader::new(&cw);
                prop_assert_eq!(code.decode(&mut reader), Some(value), "{} roundtrip", code.name());
                prop_assert!(reader.is_exhausted());
            }
        }

        #[test]
        fn prefix_free(a in 1u64..5000, b in 1u64..5000) {
            prop_assume!(a != b);
            for code in all_codes() {
                prop_assert!(
                    !code.encode(a).is_prefix_of(&code.encode(b)),
                    "{}({a}) is a prefix of {}({b})", code.name(), code.name()
                );
            }
        }

        #[test]
        fn decoders_are_total_on_garbage_bitstreams(raw in prop::collection::vec(0u8..2, 0..512)) {
            let bits: Vec<bool> = raw.iter().map(|&b| b == 1).collect();
            // Feed arbitrary bits to every decoder until it gives up: each
            // call must return (no panic, hang or shift overflow), yield a
            // positive value, and consume at least one bit — so the scan
            // terminates on any input.
            let stream = Codeword::from_bits(bits.iter().copied());
            for code in all_codes() {
                let mut reader = BitReader::new(&stream);
                let mut last = reader.position();
                while let Some(v) = code.decode(&mut reader) {
                    prop_assert!(v >= 1, "{} decoded 0", code.name());
                    prop_assert!(reader.position() > last, "{} made no progress", code.name());
                    last = reader.position();
                }
            }
        }

        #[test]
        fn strict_prefixes_never_decode(value in 1u64..1_000_000u64, cut_seed in 0usize..10_000) {
            // Prefix-freeness implies no strict prefix of a codeword is itself
            // decodable: if it were, it would be a shorter codeword prefixing
            // a longer one.
            for code in all_codes() {
                let full = code.encode(value);
                let cut = cut_seed % full.len();
                let prefix = Codeword::from_bits(full.bits()[..cut].iter().copied());
                let mut reader = BitReader::new(&prefix);
                prop_assert_eq!(
                    code.decode(&mut reader), None,
                    "{}({}) truncated to {} bits still decoded", code.name(), value, cut
                );
            }
        }

        #[test]
        fn two_codewords_never_match_the_same_holiday(a in 1u64..800, b in 1u64..800, holiday in 0u64..1_000_000u64) {
            // The scheduling-correctness core: distinct colours cannot both be
            // happy at any holiday, because both reversed codewords would be
            // suffixes of the same binary string, contradicting prefix-freeness.
            prop_assume!(a != b);
            for code in all_codes() {
                let ca = code.encode(a);
                let cb = code.encode(b);
                prop_assert!(
                    !(ca.matches_holiday(holiday) && cb.matches_holiday(holiday)),
                    "{}: colours {a} and {b} collide at holiday {holiday}", code.name()
                );
            }
        }
    }
}
