//! Bit-level codeword representation and streaming reads.

use std::fmt;

/// A finite bit string, stored most-significant-bit first (the order in which
/// a codeword is written on paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Codeword {
    bits: Vec<bool>,
}

impl Codeword {
    /// The empty codeword `λ`.
    pub fn empty() -> Self {
        Codeword { bits: Vec::new() }
    }

    /// Builds a codeword from bits given MSB-first.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        Codeword { bits: bits.into_iter().collect() }
    }

    /// Parses a codeword from a string of `'0'`/`'1'` characters; any other
    /// character (spaces are common in the paper's examples) is skipped.
    pub fn parse(s: &str) -> Self {
        Codeword {
            bits: s
                .chars()
                .filter_map(|c| match c {
                    '0' => Some(false),
                    '1' => Some(true),
                    _ => None,
                })
                .collect(),
        }
    }

    /// The standard binary representation `B(n)` of a positive integer: most
    /// significant bit first, no leading zeros.
    ///
    /// # Panics
    /// Panics if `n == 0` (the paper's `B(n)` is defined for `n ≥ 1`).
    pub fn binary(n: u64) -> Self {
        assert!(n > 0, "B(n) is defined for n >= 1");
        let width = 64 - n.leading_zeros();
        let bits = (0..width).rev().map(|k| (n >> k) & 1 == 1).collect();
        Codeword { bits }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the codeword is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits, MSB-first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends another codeword (`self ∘ other`).
    pub fn concat(&self, other: &Codeword) -> Codeword {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&other.bits);
        Codeword { bits }
    }

    /// The reversed codeword (`self^R` in the paper's notation).
    pub fn reversed(&self) -> Codeword {
        Codeword { bits: self.bits.iter().rev().copied().collect() }
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Codeword) -> bool {
        self.len() <= other.len() && other.bits[..self.len()] == self.bits[..]
    }

    /// Whether `self` is a suffix of `other`.
    pub fn is_suffix_of(&self, other: &Codeword) -> bool {
        self.len() <= other.len() && other.bits[other.len() - self.len()..] == self.bits[..]
    }

    /// Interprets the codeword as an unsigned integer, MSB-first.
    /// The empty codeword decodes to 0.
    pub fn to_u64_msb_first(&self) -> u64 {
        self.bits.iter().fold(0u64, |acc, &b| (acc << 1) | u64::from(b))
    }

    /// Interprets the codeword with its *first* bit as the least significant
    /// bit.  This is exactly the "offset" of the §4.2 scheduler: holiday `i`
    /// matches colour `c` iff `i ≡ offset (mod 2^len)` where `offset` is the
    /// codeword of `c` read in this orientation (see [`crate::schedule`]).
    pub fn to_u64_lsb_first(&self) -> u64 {
        self.bits.iter().rev().fold(0u64, |acc, &b| (acc << 1) | u64::from(b))
    }

    /// Whether the reversed codeword is a suffix of the binary representation
    /// of `holiday`, padded with infinitely many leading zeros — the happiness
    /// test `LSB(B(i), |ω(c)|) = ω(c)^R` from the Elias omega code algorithm.
    pub fn matches_holiday(&self, holiday: u64) -> bool {
        if self.len() >= 64 {
            // Periods beyond 2^63 never recur within a u64 horizon; only the
            // exact offset matches.
            return holiday == self.to_u64_lsb_first();
        }
        let period = 1u64 << self.len();
        holiday % period == self.to_u64_lsb_first()
    }
}

impl fmt::Display for Codeword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "λ");
        }
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

/// A cursor over the bits of a codeword (or any bit slice), used for
/// streaming decoding of concatenated codewords.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bits: &'a [bool],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a codeword.
    pub fn new(code: &'a Codeword) -> Self {
        BitReader { bits: code.bits(), pos: 0 }
    }

    /// Creates a reader over a raw bit slice (MSB-first).
    pub fn from_bits(bits: &'a [bool]) -> Self {
        BitReader { bits, pos: 0 }
    }

    /// Reads one bit, advancing the cursor.
    pub fn read_bit(&mut self) -> Option<bool> {
        let b = self.bits.get(self.pos).copied();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    /// Reads `k` bits MSB-first as an integer.  Returns `None` (without a
    /// defined cursor position) if fewer than `k` bits remain.
    pub fn read_bits(&mut self, k: usize) -> Option<u64> {
        if self.remaining() < k || k > 64 {
            return None;
        }
        let mut value = 0u64;
        for _ in 0..k {
            value = (value << 1) | u64::from(self.bits[self.pos]);
            self.pos += 1;
        }
        Some(value)
    }

    /// Number of unread bits.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Number of unread bits.  Alias of [`BitReader::remaining`], named to
    /// match [`crate::wire::BitSource`] so WAL-frame scanning code reads the
    /// same against either cursor.
    pub fn remaining_bits(&self) -> usize {
        self.remaining()
    }

    /// Whether all bits have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Advances the cursor to the next byte boundary (the next multiple of
    /// 8 bits), clamped to the end of the stream.  After a corrupt frame,
    /// scanners resync here instead of re-deriving bit offsets by hand.
    pub fn align_to_byte(&mut self) {
        let phase = self.pos % 8;
        if phase != 0 {
            self.pos = (self.pos + 8 - phase).min(self.bits.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binary_representation_matches_paper_examples() {
        assert_eq!(Codeword::binary(1).to_string(), "1");
        assert_eq!(Codeword::binary(9).to_string(), "1001");
        assert_eq!(Codeword::binary(3).to_string(), "11");
        assert_eq!(Codeword::binary(8).to_string(), "1000");
        assert_eq!(Codeword::binary(255).len(), 8);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn binary_of_zero_panics() {
        Codeword::binary(0);
    }

    #[test]
    fn empty_codeword_displays_lambda() {
        assert_eq!(Codeword::empty().to_string(), "λ");
        assert!(Codeword::empty().is_empty());
        assert_eq!(Codeword::empty().len(), 0);
    }

    #[test]
    fn parse_skips_separators() {
        let c = Codeword::parse("11 1001 0");
        assert_eq!(c.len(), 7);
        assert_eq!(c.to_string(), "1110010");
        assert_eq!(Codeword::parse(""), Codeword::empty());
    }

    #[test]
    fn concat_and_push() {
        let a = Codeword::parse("10");
        let b = Codeword::parse("01");
        assert_eq!(a.concat(&b).to_string(), "1001");
        assert_eq!(Codeword::empty().concat(&a), a);
        let mut c = Codeword::empty();
        c.push(true);
        c.push(false);
        assert_eq!(c, a);
    }

    #[test]
    fn reversal_and_affix_checks() {
        let c = Codeword::parse("1101");
        assert_eq!(c.reversed().to_string(), "1011");
        assert_eq!(c.reversed().reversed(), c);
        assert!(Codeword::parse("11").is_prefix_of(&c));
        assert!(!Codeword::parse("10").is_prefix_of(&c));
        assert!(Codeword::parse("01").is_suffix_of(&c));
        assert!(!Codeword::parse("11").is_suffix_of(&c));
        assert!(Codeword::empty().is_prefix_of(&c));
        assert!(Codeword::empty().is_suffix_of(&c));
        assert!(!c.is_prefix_of(&Codeword::parse("11")));
    }

    #[test]
    fn numeric_interpretations() {
        let c = Codeword::parse("110");
        assert_eq!(c.to_u64_msb_first(), 6);
        assert_eq!(c.to_u64_lsb_first(), 3);
        assert_eq!(Codeword::empty().to_u64_msb_first(), 0);
        assert_eq!(Codeword::empty().to_u64_lsb_first(), 0);
    }

    #[test]
    fn matches_holiday_is_an_arithmetic_progression() {
        // Codeword "110": period 8, offset = reversed-as-binary = 0b011 = 3.
        let c = Codeword::parse("110");
        let matches: Vec<u64> = (0..40).filter(|&i| c.matches_holiday(i)).collect();
        assert_eq!(matches, vec![3, 11, 19, 27, 35]);
        // The empty codeword matches every holiday (period 1).
        assert!(Codeword::empty().matches_holiday(0));
        assert!(Codeword::empty().matches_holiday(17));
    }

    #[test]
    fn matches_holiday_agrees_with_suffix_definition() {
        // Cross-check the arithmetic-progression implementation against the
        // paper's literal definition via string suffix matching.
        for value in 1..64u64 {
            let code = Codeword::binary(value);
            for holiday in 1..512u64 {
                let bin = format!("{holiday:064b}");
                let codestr: String =
                    code.reversed().bits().iter().map(|&b| if b { '1' } else { '0' }).collect();
                let expected = bin.ends_with(&codestr);
                assert_eq!(
                    code.matches_holiday(holiday),
                    expected,
                    "value {value} holiday {holiday}"
                );
            }
        }
    }

    #[test]
    fn bit_reader_reads_in_order() {
        let c = Codeword::parse("10110");
        let mut r = BitReader::new(&c);
        assert_eq!(r.remaining(), 5);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(3), Some(0b011));
        assert_eq!(r.position(), 4);
        assert_eq!(r.read_bit(), Some(false));
        assert!(r.is_exhausted());
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn bit_reader_aligns_at_all_eight_phases() {
        // 16 bits = two full bytes; consuming `phase` bits then aligning must
        // land on bit 0 (phase 0) or bit 8 (phases 1..=7), and the phase-8
        // cursor is already aligned.
        let c = Codeword::parse("1010101001010101");
        for phase in 0..=8usize {
            let mut r = BitReader::new(&c);
            for _ in 0..phase {
                r.read_bit();
            }
            r.align_to_byte();
            let expect = if phase == 0 { 0 } else { 8 };
            assert_eq!(r.position(), expect, "phase {phase}");
            assert_eq!(r.remaining_bits(), 16 - expect, "phase {phase}");
        }
        // Alignment never runs past the end of a ragged stream.
        let short = Codeword::parse("10110");
        let mut r = BitReader::new(&short);
        r.read_bits(3);
        r.align_to_byte();
        assert_eq!(r.position(), 5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn bit_reader_rejects_overlong_reads() {
        let c = Codeword::parse("101");
        let mut r = BitReader::new(&c);
        assert_eq!(r.read_bits(4), None);
        assert_eq!(r.position(), 0, "failed read must not consume bits");
        assert_eq!(r.read_bits(3), Some(5));
    }

    proptest! {
        #[test]
        fn binary_roundtrips_via_msb_interpretation(n in 1u64..u64::MAX / 2) {
            let c = Codeword::binary(n);
            prop_assert_eq!(c.to_u64_msb_first(), n);
            prop_assert!(c.bits()[0], "no leading zeros");
        }

        #[test]
        fn reversal_swaps_msb_and_lsb_interpretations(n in 1u64..1_000_000u64) {
            let c = Codeword::binary(n);
            prop_assert_eq!(c.reversed().to_u64_lsb_first(), n);
            prop_assert_eq!(c.to_u64_lsb_first(), c.reversed().to_u64_msb_first());
        }

        #[test]
        fn holiday_matches_are_periodic(n in 1u64..2000u64, h in 0u64..100_000u64) {
            let c = Codeword::binary(n);
            let period = 1u64 << c.len();
            let offset = c.to_u64_lsb_first();
            prop_assert_eq!(c.matches_holiday(h), h % period == offset);
        }
    }
}
