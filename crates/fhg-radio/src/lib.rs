//! # fhg-radio
//!
//! The cellular-radio application layer the paper's introduction motivates:
//! "it would be beneficial if cellular radios could guarantee that when they
//! broadcast none of the other radios interfere.  In this application the
//! shared resource is the air which is within transmission radius of more
//! than one radio."
//!
//! A [`network::RadioNetwork`] places radios in the unit square and derives
//! the interference (conflict) graph; [`tdma`] turns any Family Holiday
//! Gathering [`Scheduler`](fhg_core::Scheduler) into a TDMA transmission
//! schedule — slot `t` carries exactly the happy set of holiday `t` — and
//! measures throughput, worst-case access latency and energy (wake-ups), the
//! quantities that make the periodic schedulers of §4/§5 attractive for
//! radios: a node only needs to wake up in its own slots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod tdma;

pub use network::RadioNetwork;
pub use tdma::{evaluate_tdma, NodeRadioStats, TdmaReport};
