//! Radio placement and interference graphs.

use fhg_graph::generators::{random_geometric, GeometricGraph};
use fhg_graph::{Graph, NodeId};

/// A field of radios with a common transmission radius and the induced
/// interference graph.
///
/// Two radios interfere (conflict) when their transmission disks overlap,
/// i.e. when their distance is at most twice the transmission radius — the
/// "shared air" of the paper's introduction.
#[derive(Debug, Clone)]
pub struct RadioNetwork {
    geometric: GeometricGraph,
    tx_radius: f64,
}

impl RadioNetwork {
    /// Places `n` radios uniformly at random in the unit square with the
    /// given transmission radius.
    ///
    /// # Panics
    /// Panics if `tx_radius` is negative or not finite.
    pub fn random(n: usize, tx_radius: f64, seed: u64) -> Self {
        assert!(
            tx_radius >= 0.0 && tx_radius.is_finite(),
            "transmission radius must be finite and non-negative"
        );
        RadioNetwork { geometric: random_geometric(n, 2.0 * tx_radius, seed), tx_radius }
    }

    /// Number of radios.
    pub fn radio_count(&self) -> usize {
        self.geometric.graph().node_count()
    }

    /// The interference (conflict) graph.
    pub fn interference_graph(&self) -> &Graph {
        self.geometric.graph()
    }

    /// The transmission radius of every radio.
    pub fn tx_radius(&self) -> f64 {
        self.tx_radius
    }

    /// Position of radio `u` in the unit square, as `(x, y)`.
    pub fn position(&self, u: NodeId) -> (f64, f64) {
        let p = self.geometric.position(u);
        (p.x, p.y)
    }

    /// Number of radios whose transmissions interfere with radio `u`.
    pub fn interferer_count(&self, u: NodeId) -> usize {
        self.geometric.graph().degree(u)
    }

    /// Mean number of interferers per radio.
    pub fn mean_interferers(&self) -> f64 {
        self.geometric.graph().average_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_requires_overlapping_disks() {
        let net = RadioNetwork::random(150, 0.06, 7);
        let g = net.interference_graph();
        for e in g.edges() {
            let (ax, ay) = net.position(e.u);
            let (bx, by) = net.position(e.v);
            let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
            assert!(dist <= 2.0 * net.tx_radius() + 1e-12);
        }
        assert_eq!(net.radio_count(), 150);
        assert!((net.tx_radius() - 0.06).abs() < 1e-15);
    }

    #[test]
    fn denser_fields_interfere_more() {
        let sparse = RadioNetwork::random(200, 0.02, 3);
        let dense = RadioNetwork::random(200, 0.10, 3);
        assert!(dense.mean_interferers() > sparse.mean_interferers());
    }

    #[test]
    fn zero_radius_means_no_interference() {
        let net = RadioNetwork::random(50, 0.0, 1);
        assert_eq!(net.interference_graph().edge_count(), 0);
        assert_eq!(net.interferer_count(0), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RadioNetwork::random(80, 0.05, 9);
        let b = RadioNetwork::random(80, 0.05, 9);
        assert_eq!(a.interference_graph(), b.interference_graph());
        assert_eq!(a.position(3), b.position(3));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_rejected() {
        RadioNetwork::random(10, -1.0, 0);
    }
}
