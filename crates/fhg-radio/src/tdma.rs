//! TDMA evaluation of holiday schedulers on radio networks.
//!
//! A holiday scheduler becomes a TDMA (time-division multiple access)
//! transmission schedule by letting slot `t` carry exactly the happy set of
//! holiday `t`: since happy sets are independent sets of the interference
//! graph, no two interfering radios ever transmit in the same slot.  The
//! metrics collected here are the radio-facing versions of the paper's
//! objectives:
//!
//! * **throughput share** — fraction of slots in which a radio transmits
//!   (the fairness landmark is `1/(interferers + 1)`);
//! * **worst-case access latency** — the longest stretch of slots without a
//!   transmission opportunity (`mul`);
//! * **energy** — for periodic schedules a radio only wakes in its own slots,
//!   so wake-ups equal transmissions; non-periodic schedules additionally pay
//!   a listen/communication wake-up *every* slot (the §3 downside).

use fhg_core::analysis::analyze_schedule;
use fhg_core::Scheduler;
use fhg_graph::NodeId;

use crate::network::RadioNetwork;

/// Per-radio TDMA statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRadioStats {
    /// The radio.
    pub radio: NodeId,
    /// Number of radios it interferes with.
    pub interferers: usize,
    /// Number of slots in which it transmitted.
    pub transmissions: u64,
    /// Fraction of slots in which it transmitted.
    pub throughput_share: f64,
    /// The fair-share landmark `1/(interferers + 1)`.
    pub fair_share: f64,
    /// Longest stretch of consecutive slots with no transmission opportunity.
    pub worst_latency: u64,
    /// Number of slots in which the radio had to be awake (transmitting,
    /// or listening for the per-slot coordination a non-periodic scheduler
    /// requires).
    pub wakeups: u64,
}

/// Whole-network TDMA evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct TdmaReport {
    /// Name of the scheduler that produced the schedule.
    pub scheduler: String,
    /// Number of slots simulated.
    pub slots: u64,
    /// Per-radio statistics.
    pub per_radio: Vec<NodeRadioStats>,
    /// Whether any slot contained two interfering transmitters (must be false).
    pub interference_detected: bool,
    /// Mean number of transmitters per slot (spatial reuse).
    pub mean_transmitters_per_slot: f64,
    /// Total wake-ups across all radios (the energy proxy).
    pub total_wakeups: u64,
}

impl TdmaReport {
    /// The largest worst-case access latency over all radios.
    pub fn max_latency(&self) -> u64 {
        self.per_radio.iter().map(|r| r.worst_latency).max().unwrap_or(0)
    }

    /// Mean ratio of achieved throughput share to the `1/(d+1)` fair share.
    pub fn mean_fairness_ratio(&self) -> f64 {
        if self.per_radio.is_empty() {
            return 1.0;
        }
        let sum: f64 = self
            .per_radio
            .iter()
            .map(|r| if r.fair_share > 0.0 { r.throughput_share / r.fair_share } else { 1.0 })
            .sum();
        sum / self.per_radio.len() as f64
    }
}

/// Runs `scheduler` as a TDMA schedule on `network` for `slots` slots.
pub fn evaluate_tdma<S: Scheduler + ?Sized>(
    network: &RadioNetwork,
    scheduler: &mut S,
    slots: u64,
) -> TdmaReport {
    let graph = network.interference_graph();
    let analysis = analyze_schedule(graph, scheduler, slots);
    let periodic = scheduler.is_periodic();
    let per_radio: Vec<NodeRadioStats> = analysis
        .per_node
        .iter()
        .map(|node| {
            let wakeups = if periodic {
                node.happy_count
            } else {
                // Non-periodic schedulers require the radio to participate in
                // coordination every slot.
                slots
            };
            NodeRadioStats {
                radio: node.node,
                interferers: node.degree,
                transmissions: node.happy_count,
                throughput_share: if slots == 0 {
                    0.0
                } else {
                    node.happy_count as f64 / slots as f64
                },
                fair_share: 1.0 / (node.degree as f64 + 1.0),
                worst_latency: node.max_unhappiness,
                wakeups,
            }
        })
        .collect();
    let total_wakeups = per_radio.iter().map(|r| r.wakeups).sum();
    TdmaReport {
        scheduler: analysis.scheduler.clone(),
        slots,
        interference_detected: !analysis.all_happy_sets_independent,
        mean_transmitters_per_slot: analysis.mean_happy_set_size,
        per_radio,
        total_wakeups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_core::prelude::*;

    fn network() -> RadioNetwork {
        RadioNetwork::random(120, 0.05, 11)
    }

    #[test]
    fn periodic_degree_bound_gives_interference_free_bounded_latency() {
        let net = network();
        let mut s = PeriodicDegreeBound::new(net.interference_graph());
        let report = evaluate_tdma(&net, &mut s, 512);
        assert!(!report.interference_detected);
        for r in &report.per_radio {
            if r.interferers > 0 {
                assert!(
                    r.worst_latency < 2 * r.interferers as u64,
                    "radio {} latency {} vs 2d {}",
                    r.radio,
                    r.worst_latency,
                    2 * r.interferers
                );
            }
        }
        assert!(report.max_latency() >= 1 || net.interference_graph().edge_count() == 0);
    }

    #[test]
    fn periodic_schedulers_use_less_energy_than_phased_greedy() {
        let net = network();
        let g = net.interference_graph().clone();
        let mut periodic = PeriodicDegreeBound::new(&g);
        let mut phased = PhasedGreedy::new(&g);
        let report_periodic = evaluate_tdma(&net, &mut periodic, 256);
        let report_phased = evaluate_tdma(&net, &mut phased, 256);
        assert!(
            report_periodic.total_wakeups < report_phased.total_wakeups,
            "periodic schedule must save wake-ups: {} vs {}",
            report_periodic.total_wakeups,
            report_phased.total_wakeups
        );
        assert!(!report_phased.interference_detected);
    }

    #[test]
    fn round_robin_latency_is_global_while_degree_bound_is_local() {
        let net = network();
        let g = net.interference_graph().clone();
        let mut rr = RoundRobinColoring::new(&g);
        let mut db = PeriodicDegreeBound::new(&g);
        let rr_report = evaluate_tdma(&net, &mut rr, 512);
        let db_report = evaluate_tdma(&net, &mut db, 512);
        // Low-interference radios get much better latency under the local
        // scheduler than under the global round robin whenever the colouring
        // is larger than their local period.
        let low = db_report
            .per_radio
            .iter()
            .filter(|r| r.interferers <= 1)
            .map(|r| r.worst_latency)
            .max()
            .unwrap_or(0);
        assert!(low <= 2);
        assert!(
            rr_report.max_latency()
                >= db_report
                    .per_radio
                    .iter()
                    .filter(|r| r.interferers <= 1)
                    .map(|r| r.worst_latency)
                    .max()
                    .unwrap_or(0)
        );
    }

    #[test]
    fn fairness_ratio_is_close_to_one_for_first_grab() {
        let net = RadioNetwork::random(60, 0.06, 3);
        let mut s = FirstComeFirstGrab::new(net.interference_graph(), 5);
        let report = evaluate_tdma(&net, &mut s, 3000);
        let ratio = report.mean_fairness_ratio();
        assert!((ratio - 1.0).abs() < 0.15, "mean fairness ratio {ratio} too far from 1");
        assert!(!report.interference_detected);
    }

    #[test]
    fn zero_slots_report() {
        let net = RadioNetwork::random(10, 0.05, 1);
        let mut s = TrivialSequential::new(net.interference_graph());
        let report = evaluate_tdma(&net, &mut s, 0);
        assert_eq!(report.total_wakeups, 0);
        assert_eq!(report.mean_transmitters_per_slot, 0.0);
        assert_eq!(report.max_latency(), 0);
        assert!((report.mean_fairness_ratio() - 0.0).abs() < 1.01, "defined even with zero slots");
    }
}
