//! # fhg-bench
//!
//! The experiment harness that regenerates every row of `EXPERIMENTS.md`
//! (experiments E1–E10) plus shared helpers for the Criterion
//! micro-benchmarks.
//!
//! The paper is purely theoretical — there are no tables or figures to copy —
//! so each "experiment" is an empirical validation of a theorem, lemma,
//! claimed bound or motivating story, as laid out in `DESIGN.md` §5.  Every
//! experiment is deterministic (fixed seeds), prints a Markdown table, and
//! returns the same table as a string so the integration tests can assert on
//! its shape.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p fhg-bench --release --bin experiments -- all
//! ```
//!
//! or a single experiment with e.g. `-- e4`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{
    bench_entries_to_json, emission_rows, fill_sweep, run_all, run_experiment,
    run_experiment_collecting, AnalysisBenchConfig, BenchEntry, ModulusRows, EXPERIMENT_IDS,
};
pub use table::Table;
