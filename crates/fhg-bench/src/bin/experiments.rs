//! Experiment runner: regenerates every table in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p fhg-bench --release --bin experiments -- all
//! cargo run -p fhg-bench --release --bin experiments -- e4 e5
//! cargo run -p fhg-bench --release --bin experiments -- --smoke e11 e12
//! cargo run -p fhg-bench --release --bin experiments -- --list
//! ```
//!
//! `--smoke` shrinks the analysis-engine experiments (`e11`–`e19`) to CI
//! sizing.  Whenever any of `e11`–`e19` run, their machine-readable medians
//! are written to `BENCH_analysis.json` **at the repository root** — the
//! compile-time manifest location when that checkout still exists,
//! otherwise the nearest enclosing workspace of the invocation directory —
//! so the perf trajectory accumulates across commits no matter where the
//! binary is launched from.

use std::path::{Path, PathBuf};
use std::time::Instant;

/// The directory `BENCH_analysis.json` belongs in: the repository root.
///
/// Preference order: the nearest ancestor of the current directory that is
/// an FHG checkout (contains `crates/fhg-bench/Cargo.toml` — so a binary
/// built in one clone but run inside another writes into the clone it runs
/// in, and an unrelated project's `Cargo.lock` never matches), then the
/// build-time manifest's workspace root (covers running from outside any
/// checkout, e.g. `/tmp`), then the current directory.
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().ok();
    if let Some(cwd) = &cwd {
        if let Some(root) =
            cwd.ancestors().find(|d| d.join("crates/fhg-bench/Cargo.toml").is_file())
        {
            return root.to_path_buf();
        }
    }
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if baked.is_dir() {
        return baked;
    }
    cwd.unwrap_or_else(|| PathBuf::from("."))
}

use fhg_bench::{
    bench_entries_to_json, run_experiment_collecting, AnalysisBenchConfig, EXPERIMENT_IDS,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment {id:?}; valid ids: {EXPERIMENT_IDS:?} or `all`");
            std::process::exit(2);
        }
    }
    let cfg = if smoke { AnalysisBenchConfig::smoke() } else { AnalysisBenchConfig::full() };
    let mut entries = Vec::new();
    for id in &ids {
        let start = Instant::now();
        let (tables, mut bench_entries) = run_experiment_collecting(id, &cfg);
        for table in &tables {
            println!("{}", table.to_markdown());
        }
        entries.append(&mut bench_entries);
        eprintln!("[{} finished in {:.1}s]\n", id, start.elapsed().as_secs_f64());
    }
    if !entries.is_empty() {
        let json = bench_entries_to_json(smoke, &entries);
        // Repo root, not CWD, so the trajectory file lands next to
        // ROADMAP.md regardless of where the binary was invoked.
        let path = repo_root().join("BENCH_analysis.json");
        // Write-then-rename so a crashed or fault-injected run can never
        // leave a truncated trajectory file behind: the rename is atomic
        // on the same filesystem, so readers see the old file or the new
        // one, never a partial write.
        let tmp = path.with_extension("json.tmp");
        match std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, &path)) {
            Ok(()) => {
                eprintln!("[wrote {}: {} entries]", path.display(), entries.len());
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
