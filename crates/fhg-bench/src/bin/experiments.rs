//! Experiment runner: regenerates every table in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p fhg-bench --release --bin experiments -- all
//! cargo run -p fhg-bench --release --bin experiments -- e4 e5
//! cargo run -p fhg-bench --release --bin experiments -- --list
//! ```

use std::time::Instant;

use fhg_bench::{run_experiment, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment {id:?}; valid ids: {EXPERIMENT_IDS:?} or `all`");
            std::process::exit(2);
        }
    }
    for id in &ids {
        let start = Instant::now();
        let tables = run_experiment(id);
        for table in &tables {
            println!("{}", table.to_markdown());
        }
        eprintln!("[{} finished in {:.1}s]\n", id, start.elapsed().as_secs_f64());
    }
}
