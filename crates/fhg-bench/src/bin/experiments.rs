//! Experiment runner: regenerates every table in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p fhg-bench --release --bin experiments -- all
//! cargo run -p fhg-bench --release --bin experiments -- e4 e5
//! cargo run -p fhg-bench --release --bin experiments -- --smoke e11 e12
//! cargo run -p fhg-bench --release --bin experiments -- --list
//! ```
//!
//! `--smoke` shrinks the analysis-engine experiments (`e11`/`e12`) to CI
//! sizing.  Whenever `e11`/`e12` run, their machine-readable medians are
//! written to `BENCH_analysis.json` in the working directory so the perf
//! trajectory accumulates across commits.

use std::time::Instant;

use fhg_bench::{
    bench_entries_to_json, run_experiment_collecting, AnalysisBenchConfig, EXPERIMENT_IDS,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment {id:?}; valid ids: {EXPERIMENT_IDS:?} or `all`");
            std::process::exit(2);
        }
    }
    let cfg = if smoke { AnalysisBenchConfig::smoke() } else { AnalysisBenchConfig::full() };
    let mut entries = Vec::new();
    for id in &ids {
        let start = Instant::now();
        let (tables, mut bench_entries) = run_experiment_collecting(id, &cfg);
        for table in &tables {
            println!("{}", table.to_markdown());
        }
        entries.append(&mut bench_entries);
        eprintln!("[{} finished in {:.1}s]\n", id, start.elapsed().as_secs_f64());
    }
    if !entries.is_empty() {
        let json = bench_entries_to_json(smoke, &entries);
        match std::fs::write("BENCH_analysis.json", &json) {
            Ok(()) => eprintln!("[wrote BENCH_analysis.json: {} entries]", entries.len()),
            Err(e) => {
                eprintln!("failed to write BENCH_analysis.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
