//! Minimal Markdown table builder used by the experiment harness.

use std::fmt::Write as _;

/// A Markdown table with a title, built row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width must match the header");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as Markdown (title as an `###` heading).
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<width$}", width = w)).collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_with_alignment() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push(&["alpha", "1"]);
        t.push(&["b", "20000"]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| name  | value |"));
        assert!(md.contains("| alpha | 1     |"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new("x", &["a", "b"]).push(&["only one"]);
    }
}
