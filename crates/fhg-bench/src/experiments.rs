//! The E1–E19 experiment implementations (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`).
//!
//! Every experiment uses fixed seeds, so the tables in `EXPERIMENTS.md` are
//! exactly reproducible with
//! `cargo run -p fhg-bench --release --bin experiments -- all`.
//!
//! The analysis-engine experiments (`e11`–`e13`) are parameterised by an
//! [`AnalysisBenchConfig`] (full vs `--smoke` sizing) and additionally
//! report machine-readable [`BenchEntry`] medians, which the experiments
//! binary serialises to `BENCH_analysis.json` (at the repository root) so CI
//! can accumulate a perf trajectory.

use std::time::Instant;

use fhg_codes::{log_star, phi, rho_omega, EliasCode, UnaryCode};
use fhg_coloring::{greedy_coloring, GreedyOrder};
use fhg_core::analysis::{
    analyze_schedule, analyze_schedule_with_engine, AnalysisEngine, CycleProfile, GraphChecker,
};
use fhg_core::dynamic::DynamicColorBound;
use fhg_core::lower_bound::lower_bound_table;
use fhg_core::prelude::*;
use fhg_core::schedulers::degree_bound::AssignmentOrder;
use fhg_core::schedulers::standard_suite;
use fhg_distributed::{distributed_slot_assignment, johansson_coloring, luby_mis};
use fhg_graph::generators::{self, Family};
use fhg_graph::Graph;
use fhg_matching::{exact_mis, greedy_mis, max_satisfaction_linear, max_satisfaction_matching};
use fhg_radio::{evaluate_tdma, RadioNetwork};

use crate::table::Table;

/// The experiment identifiers, in order.
pub const EXPERIMENT_IDS: [&str; 19] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19",
];

/// Sizing knobs for the analysis-engine experiments (`e11`–`e19`).
#[derive(Debug, Clone)]
pub struct AnalysisBenchConfig {
    /// Nodes of the Erdős–Rényi conflict graph.
    pub nodes: usize,
    /// Edge probability (full config targets mean degree ~10).
    pub edge_prob: f64,
    /// Graph seed.
    pub seed: u64,
    /// The short (PR 2 acceptance) horizon.
    pub horizon: u64,
    /// The long horizon the closed form must make essentially free.
    pub long_horizon: u64,
    /// Nodes of the long-cycle residue schedule `e14` times the parallel
    /// profile build on.
    pub build_nodes: usize,
    /// The two interleaved hosting moduli of that schedule; their lcm is
    /// the cycle (`cycle ≈ 10⁵` on the full config), long enough that the
    /// build itself — not the derivation — dominates.
    pub build_moduli: (u64, u64),
    /// Timing repetitions per measurement (the tables report medians).
    pub reps: usize,
    /// Tenant schedules the `e16` serving-tier load generator caches.
    pub serve_tenants: usize,
    /// Windowed queries the `e16` load generator issues per measured path.
    pub serve_queries: usize,
    /// Edge events the `e17` churn stream pushes through the incremental
    /// repair plane.
    pub churn_events: usize,
}

impl AnalysisBenchConfig {
    /// The full configuration the ROADMAP numbers are quoted on:
    /// `erdos_renyi(10_000, 0.001)`, 4096 holidays, 1M-holiday long
    /// horizon, and a 4096-node cycle-80000 schedule for the parallel
    /// profile build.
    pub fn full() -> Self {
        AnalysisBenchConfig {
            nodes: 10_000,
            edge_prob: 0.001,
            seed: 42,
            horizon: 4096,
            long_horizon: 1 << 20,
            build_nodes: 4096,
            build_moduli: (128, 625),
            reps: 5,
            serve_tenants: 1024,
            serve_queries: 200_000,
            churn_events: 512,
        }
    }

    /// CI smoke sizing: same shape, ~10x smaller, so the perf trajectory
    /// accumulates on every push without slowing the pipeline.
    pub fn smoke() -> Self {
        AnalysisBenchConfig {
            nodes: 2_000,
            edge_prob: 0.005,
            seed: 42,
            horizon: 1024,
            long_horizon: 1 << 17,
            build_nodes: 1024,
            build_moduli: (32, 125),
            reps: 3,
            serve_tenants: 1024,
            serve_queries: 20_000,
            churn_events: 128,
        }
    }

    /// The cycle of the `e14` build schedule (the lcm of the two moduli).
    pub fn build_cycle(&self) -> u64 {
        let (a, b) = self.build_moduli;
        let gcd = |mut a: u64, mut b: u64| {
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        };
        a / gcd(a, b) * b
    }
}

/// One machine-readable measurement from `e11`–`e13`, serialised to
/// `BENCH_analysis.json` by the experiments binary.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Experiment id (`"e11"` / `"e12"` / `"e13"`).
    pub experiment: &'static str,
    /// Engine label (matches the table row).
    pub engine: String,
    /// Worker threads the measurement ran with.
    pub threads: usize,
    /// Analysed horizon.
    pub horizon: u64,
    /// Median wall time over the config's repetitions, milliseconds.
    pub median_ms: f64,
    /// Speedup versus the experiment's baseline row (1.0 for the baseline).
    pub speedup: f64,
}

/// Serialises bench entries to the `BENCH_analysis.json` document (schema
/// `fhg-bench-analysis/1`).  Hand-rolled: the workspace has no JSON
/// dependency.
pub fn bench_entries_to_json(smoke: bool, entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"fhg-bench-analysis/1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
             \"horizon\": {}, \"median_ms\": {:.6}, \"speedup\": {:.3}}}{}\n",
            e.experiment, e.engine, e.threads, e.horizon, e.median_ms, e.speedup, comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs one experiment by id (`"e1"` … `"e13"`), returning its tables.
///
/// # Panics
/// Panics if the id is unknown.
pub fn run_experiment(id: &str) -> Vec<Table> {
    run_experiment_collecting(id, &AnalysisBenchConfig::full()).0
}

/// Like [`run_experiment`], but with explicit analysis-bench sizing and the
/// machine-readable entries of `e11`–`e13` (empty for other experiments).
///
/// # Panics
/// Panics if the id is unknown.
pub fn run_experiment_collecting(
    id: &str,
    cfg: &AnalysisBenchConfig,
) -> (Vec<Table>, Vec<BenchEntry>) {
    match id {
        "e1" => (e1_phased_greedy_bound(), Vec::new()),
        "e2" => (e2_elias_omega_periods(), Vec::new()),
        "e3" => (e3_lower_bound(), Vec::new()),
        "e4" => (e4_periodic_degree_bound(), Vec::new()),
        "e5" => (e5_distributed_rounds(), Vec::new()),
        "e6" => (e6_scheduler_comparison(), Vec::new()),
        "e7" => (e7_first_come_first_grab(), Vec::new()),
        "e8" => (e8_dynamic_recovery(), Vec::new()),
        "e9" => (e9_satisfaction(), Vec::new()),
        "e10" => (e10_mis_and_radio(), Vec::new()),
        "e11" => e11_analysis_engine_with(cfg),
        "e12" => e12_closed_form_engine_with(cfg),
        "e13" => e13_fused_kernel_emission_with(cfg),
        "e14" => e14_soa_derive_and_parallel_build_with(cfg),
        "e15" => e15_verification_throughput_with(cfg),
        "e16" => e16_windowed_serving_with(cfg),
        "e17" => e17_incremental_repair_with(cfg),
        "e18" => e18_crash_only_serving_with(cfg),
        "e19" => e19_durable_recovery_with(cfg),
        other => panic!("unknown experiment id {other:?}; valid ids: {EXPERIMENT_IDS:?}"),
    }
}

/// Runs every experiment in order, returning all tables.
pub fn run_all() -> Vec<Table> {
    EXPERIMENT_IDS.iter().flat_map(|id| run_experiment(id)).collect()
}

fn family_instances(n: usize, avg_degree: f64, seed: u64) -> Vec<(Family, Graph)> {
    Family::ALL.iter().map(|&f| (f, f.generate(n, avg_degree, seed))).collect()
}

/// E1 — Theorem 3.1: the phased-greedy schedule never leaves a parent of
/// degree `d` unhappy for more than `d` consecutive holidays, on every graph
/// family, with O(1) communication rounds per holiday.
pub fn e1_phased_greedy_bound() -> Vec<Table> {
    let mut table = Table::new(
        "E1 — Theorem 3.1: phased greedy, worst unhappy streak vs the d+1 bound",
        &[
            "family",
            "n",
            "edges",
            "max degree",
            "worst streak",
            "worst streak - degree (max)",
            "bound violations",
            "init rounds",
            "rounds/holiday",
        ],
    );
    for (family, graph) in family_instances(600, 8.0, 11) {
        let mut scheduler = PhasedGreedy::with_distributed_init(&graph, 101);
        let horizon = 4 * (graph.max_degree() as u64 + 1).max(32);
        let analysis = analyze_schedule(&graph, &mut scheduler, horizon);
        let worst = analysis.max_unhappiness();
        let worst_slack = analysis
            .per_node
            .iter()
            .map(|n| n.max_unhappiness as i64 - n.degree as i64)
            .max()
            .unwrap_or(0);
        let violations = analysis.bound_violations(&scheduler).len();
        table.push(&[
            family.name().to_string(),
            graph.node_count().to_string(),
            graph.edge_count().to_string(),
            graph.max_degree().to_string(),
            worst.to_string(),
            worst_slack.to_string(),
            violations.to_string(),
            scheduler.init_rounds().to_string(),
            scheduler.rounds_per_holiday().to_string(),
        ]);
    }
    vec![table]
}

/// E2 — Theorem 4.2: the Elias-omega schedule is perfectly periodic with
/// period `2^ρ(c) ≤ 2^{1+log* c}·φ(c)`, plus the prefix-code ablation.
pub fn e2_elias_omega_periods() -> Vec<Table> {
    let mut analytic = Table::new(
        "E2a — Theorem 4.2: per-colour period 2^rho(c) vs the bound 2^(1+log* c)·phi(c)",
        &["colour c", "rho(c)", "period 2^rho(c)", "bound", "period/bound"],
    );
    for exp in 0..=16u32 {
        let c = 1u64 << exp;
        let period = 2f64.powi(rho_omega(c) as i32);
        let bound = 2f64.powi(1 + log_star(c as f64) as i32) * phi(c as f64);
        analytic.push(&[
            c.to_string(),
            rho_omega(c).to_string(),
            format!("{period:.0}"),
            format!("{bound:.0}"),
            format!("{:.3}", period / bound),
        ]);
    }

    let mut ablation = Table::new(
        "E2b — prefix-code ablation on an Erdős–Rényi conflict graph (n=400, mean degree 8)",
        &["code", "max colour", "max period", "mean period", "conflict-free", "all periodic"],
    );
    let graph = generators::erdos_renyi(400, 8.0 / 399.0, 7);
    let coloring = greedy_coloring(&graph, GreedyOrder::Natural);
    let schedulers: Vec<(&str, PrefixCodeScheduler)> = vec![
        ("elias-omega", PrefixCodeScheduler::with_code(&graph, &coloring, EliasCode::omega())),
        ("elias-delta", PrefixCodeScheduler::with_code(&graph, &coloring, EliasCode::delta())),
        ("elias-gamma", PrefixCodeScheduler::with_code(&graph, &coloring, EliasCode::gamma())),
        ("unary", PrefixCodeScheduler::with_code(&graph, &coloring, UnaryCode)),
    ];
    let max_color = u64::from(coloring.max_color());
    for (name, mut sched) in schedulers {
        let periods: Vec<u64> = graph.nodes().map(|p| sched.period(p).unwrap()).collect();
        let max_period = periods.iter().copied().max().unwrap_or(1);
        let mean_period = periods.iter().sum::<u64>() as f64 / periods.len().max(1) as f64;
        let horizon = 1024;
        let analysis = analyze_schedule(&graph, &mut sched, horizon);
        let all_periodic = analysis.per_node.iter().all(|n| {
            n.observed_period.is_none() || Some(n.observed_period.unwrap()) == sched.period(n.node)
        });
        ablation.push(&[
            name.to_string(),
            max_color.to_string(),
            max_period.to_string(),
            format!("{mean_period:.1}"),
            analysis.all_happy_sets_independent.to_string(),
            all_periodic.to_string(),
        ]);
    }
    vec![analytic, ablation]
}

/// E3 — Theorem 4.1: the Cauchy-condensation lower bound, validated through
/// the feasibility functional `Σ 1/f(c)` and constructive packing.
pub fn e3_lower_bound() -> Vec<Table> {
    let mut table = Table::new(
        "E3 — Theorem 4.1: feasibility of period functions (sum limit 10^6, packing cap 128)",
        &["period function", "sum of 1/f(c)", "feasible (sum <= 1)", "packable colours (cap 128)"],
    );
    for row in lower_bound_table(1_000_000, 128) {
        table.push(&[
            row.function.clone(),
            format!("{:.4}", row.reciprocal_sum),
            (row.reciprocal_sum <= 1.0).to_string(),
            row.packable_colors.to_string(),
        ]);
    }
    vec![table]
}

/// E4 — Theorem 5.3 / Lemmas 5.1–5.2: the periodic degree-bound schedule has
/// period exactly `2^⌈log₂(d+1)⌉ ≤ 2d`, with no conflicts, and the
/// decreasing-degree order is necessary.
pub fn e4_periodic_degree_bound() -> Vec<Table> {
    let mut per_family = Table::new(
        "E4a — Theorem 5.3: periodic degree-bound schedule across graph families",
        &[
            "family",
            "n",
            "max degree",
            "max period",
            "max period / 2d",
            "conflicts",
            "all nodes periodic",
        ],
    );
    for (family, graph) in family_instances(600, 8.0, 13) {
        let mut scheduler = PeriodicDegreeBound::new(&graph);
        let horizon = (4 * graph.nodes().map(|p| scheduler.period(p).unwrap()).max().unwrap_or(1))
            .clamp(64, 8192);
        let analysis = analyze_schedule(&graph, &mut scheduler, horizon);
        let max_period = graph.nodes().map(|p| scheduler.period(p).unwrap()).max().unwrap_or(1);
        let worst_ratio = graph
            .nodes()
            .filter(|&p| graph.degree(p) > 0)
            .map(|p| scheduler.period(p).unwrap() as f64 / (2 * graph.degree(p)) as f64)
            .fold(0.0f64, f64::max);
        let all_periodic = analysis
            .per_node
            .iter()
            .filter(|n| scheduler.period(n.node).unwrap() * 2 <= horizon)
            .all(|n| n.observed_period == scheduler.period(n.node));
        per_family.push(&[
            family.name().to_string(),
            graph.node_count().to_string(),
            graph.max_degree().to_string(),
            max_period.to_string(),
            format!("{worst_ratio:.3}"),
            (!analysis.all_happy_sets_independent as u64).to_string(),
            all_periodic.to_string(),
        ]);
    }

    let mut ablation = Table::new(
        "E4b — assignment-order ablation (200 Erdős–Rényi graphs, n=24, p=0.25)",
        &["order", "graphs with hosting conflicts", "graphs where assignment failed"],
    );
    for (label, order) in [
        ("decreasing degree (paper)", AssignmentOrder::DecreasingDegree),
        ("increasing degree", AssignmentOrder::IncreasingDegree),
        ("node id", AssignmentOrder::Natural),
    ] {
        let mut conflicts = 0usize;
        let mut failures = 0usize;
        for seed in 0..200u64 {
            let graph = generators::erdos_renyi(24, 0.25, seed);
            match PeriodicDegreeBound::with_order(&graph, order) {
                None => failures += 1,
                Some(s) => {
                    if !s.verify_no_conflicts(&graph) {
                        conflicts += 1;
                    }
                }
            }
        }
        ablation.push(&[label.to_string(), conflicts.to_string(), failures.to_string()]);
    }
    vec![per_family, ablation]
}

/// E5 — distributed initialisation costs: rounds and messages of the
/// Johansson colouring, Luby MIS and the §5.2 phased slot assignment as the
/// network grows.
pub fn e5_distributed_rounds() -> Vec<Table> {
    let mut table = Table::new(
        "E5 — distributed initialisation cost vs network size (Erdős–Rényi, mean degree 8)",
        &[
            "n",
            "colouring rounds",
            "colouring msgs/node",
            "Luby MIS rounds",
            "§5.2 phases",
            "§5.2 total rounds",
        ],
    );
    for &n in &[256usize, 1024, 4096, 16384] {
        let p = 8.0 / (n as f64 - 1.0);
        let graph = generators::erdos_renyi(n, p, 3);
        let (_, coloring_stats) = johansson_coloring(&graph, 5);
        let mis = luby_mis(&graph, 7, 4096);
        let slots = distributed_slot_assignment(&graph, 9);
        table.push(&[
            n.to_string(),
            coloring_stats.rounds.to_string(),
            format!("{:.1}", coloring_stats.messages as f64 / n as f64),
            mis.stats.rounds.to_string(),
            slots.phases.to_string(),
            slots.stats.rounds.to_string(),
        ]);
    }
    vec![table]
}

/// E6 — local vs global guarantees: on a heavy-tailed conflict graph, compare
/// every scheduler's worst wait for low-degree parents against the global
/// `Δ+1` round robin.
pub fn e6_scheduler_comparison() -> Vec<Table> {
    let graph = generators::barabasi_albert(1000, 2, 17);
    let horizon = 4096;
    let mut table = Table::new(
        format!(
            "E6 — scheduler comparison on Barabási–Albert n=1000 (max degree {}, median degree ~2)",
            graph.max_degree()
        ),
        &[
            "scheduler",
            "worst wait (all)",
            "worst wait (degree <= 3)",
            "perfectly periodic",
            "fairness (Jain)",
            "init rounds",
        ],
    );
    for mut scheduler in standard_suite(&graph, 19) {
        let analysis = analyze_schedule(&graph, scheduler.as_mut(), horizon);
        let low_degree_worst = analysis
            .per_node
            .iter()
            .filter(|n| n.degree <= 3)
            .map(|n| n.max_unhappiness)
            .max()
            .unwrap_or(0);
        table.push(&[
            analysis.scheduler.clone(),
            analysis.max_unhappiness().to_string(),
            low_degree_worst.to_string(),
            analysis.all_periodic().to_string(),
            format!("{:.3}", analysis.jain_fairness()),
            scheduler.init_rounds().to_string(),
        ]);
    }
    vec![table]
}

/// E7 — the "first come first grab" landmark: the empirical happiness
/// frequency of a parent of degree `d` approaches `1/(d+1)`.
pub fn e7_first_come_first_grab() -> Vec<Table> {
    let mut table = Table::new(
        "E7 — first come first grab: happiness frequency vs the 1/(d+1) landmark",
        &["family", "degree bucket", "parents", "mean frequency", "mean 1/(d+1)", "ratio"],
    );
    let horizon = 20_000u64;
    for (family, graph) in [
        (Family::ErdosRenyi, Family::ErdosRenyi.generate(300, 6.0, 23)),
        (Family::BarabasiAlbert, Family::BarabasiAlbert.generate(300, 6.0, 23)),
    ] {
        let mut scheduler = FirstComeFirstGrab::new(&graph, 31);
        let analysis = analyze_schedule(&graph, &mut scheduler, horizon);
        // Bucket parents by degree range.
        let buckets: [(usize, usize); 4] = [(0, 2), (3, 5), (6, 10), (11, usize::MAX)];
        for (lo, hi) in buckets {
            let members: Vec<_> =
                analysis.per_node.iter().filter(|n| n.degree >= lo && n.degree <= hi).collect();
            if members.is_empty() {
                continue;
            }
            let mean_freq =
                members.iter().map(|n| n.happy_count as f64 / horizon as f64).sum::<f64>()
                    / members.len() as f64;
            let mean_target = members.iter().map(|n| 1.0 / (n.degree as f64 + 1.0)).sum::<f64>()
                / members.len() as f64;
            let hi_label = if hi == usize::MAX { "+".to_string() } else { hi.to_string() };
            table.push(&[
                family.name().to_string(),
                format!("{lo}-{hi_label}"),
                members.len().to_string(),
                format!("{mean_freq:.4}"),
                format!("{mean_target:.4}"),
                format!("{:.3}", mean_freq / mean_target),
            ]);
        }
    }
    vec![table]
}

/// E8 — the dynamic setting: recovery after bursts of edge insertions stays
/// within the §6 bound `w·φ(d)·2^{log* d + 1}`.
pub fn e8_dynamic_recovery() -> Vec<Table> {
    let mut table = Table::new(
        "E8 — §6 dynamic setting: hosting period of repaired nodes after edge-churn bursts",
        &[
            "burst size w",
            "repairs",
            "max post-repair period",
            "max single-event recovery bound",
            "within bound",
            "colouring proper",
        ],
    );
    for &burst in &[5usize, 20, 50, 100] {
        let initial = generators::erdos_renyi(200, 0.03, 29);
        let mut scheduler = DynamicColorBound::new(&initial);
        let events = fhg_graph::dynamic::random_churn(&initial, burst, 0.8, 0, 101 + burst as u64);
        let mut repairs = 0u64;
        let mut max_period = 0u64;
        let mut max_bound = 0u64;
        for event in events {
            let repair = scheduler.apply_event(event).expect("valid churn");
            for p in repair.recolored() {
                repairs += 1;
                max_period = max_period.max(scheduler.current_period(p));
                max_bound = max_bound.max(scheduler.recovery_bound(p));
            }
        }
        table.push(&[
            burst.to_string(),
            repairs.to_string(),
            max_period.to_string(),
            max_bound.to_string(),
            (max_period <= max_bound.max(2)).to_string(),
            scheduler.coloring_is_proper().to_string(),
        ]);
    }
    vec![table]
}

/// E9 — Appendix A.3: maximum satisfaction, Hopcroft–Karp vs the specialised
/// linear-time algorithm, and the alternation guarantee.
pub fn e9_satisfaction() -> Vec<Table> {
    let mut table = Table::new(
        "E9 — Appendix A.3: maximum satisfaction (linear-time peeling vs Hopcroft–Karp)",
        &[
            "n",
            "couples",
            "satisfied (linear)",
            "satisfied (HK)",
            "equal",
            "linear time (ms)",
            "HK time (ms)",
        ],
    );
    for &n in &[1_000usize, 10_000, 100_000, 400_000] {
        let graph = generators::erdos_renyi(n, 3.0 / (n as f64 - 1.0), 37);
        let start = Instant::now();
        let linear = max_satisfaction_linear(&graph);
        let linear_time = start.elapsed();
        let start = Instant::now();
        let matching = max_satisfaction_matching(&graph);
        let hk_time = start.elapsed();
        let count = |a: &[Option<usize>]| a.iter().filter(|x| x.is_some()).count();
        table.push(&[
            n.to_string(),
            graph.edge_count().to_string(),
            count(&linear).to_string(),
            count(&matching).to_string(),
            (count(&linear) == count(&matching)).to_string(),
            format!("{:.2}", linear_time.as_secs_f64() * 1e3),
            format!("{:.2}", hk_time.as_secs_f64() * 1e3),
        ]);
    }

    let mut alternation = Table::new(
        "E9b — alternation guarantee: every parent with children satisfied within 2 holidays",
        &["n", "parents with children", "satisfied within 2 holidays", "guarantee holds"],
    );
    for &n in &[500usize, 5_000] {
        let graph = generators::barabasi_albert(n, 2, 41);
        let alt = fhg_matching::AlternatingSatisfaction::new(&graph);
        let with_children = graph.nodes().filter(|&p| graph.degree(p) > 0).count();
        let even: std::collections::HashSet<_> = alt.satisfied_set(0).into_iter().collect();
        let odd: std::collections::HashSet<_> = alt.satisfied_set(1).into_iter().collect();
        let covered = graph
            .nodes()
            .filter(|&p| graph.degree(p) > 0 && (even.contains(&p) || odd.contains(&p)))
            .count();
        alternation.push(&[
            n.to_string(),
            with_children.to_string(),
            covered.to_string(),
            (covered == with_children).to_string(),
        ]);
    }
    vec![table, alternation]
}

/// E10 — Appendix A.1 (happiness is MIS, hence hard) and the radio
/// application: greedy-vs-exact MIS gap, and TDMA quality per scheduler.
pub fn e10_mis_and_radio() -> Vec<Table> {
    let mut mis_table = Table::new(
        "E10a — single-holiday maximum happiness: greedy vs exact MIS (Appendix A.1)",
        &["graph", "n", "exact MIS", "greedy MIS", "greedy/exact"],
    );
    let instances = vec![
        ("erdos-renyi p=0.10", generators::erdos_renyi(50, 0.10, 43)),
        ("erdos-renyi p=0.25", generators::erdos_renyi(45, 0.25, 44)),
        ("unit-disk dense", Family::UnitDisk.generate(45, 8.0, 45)),
        ("barabasi-albert m=3", generators::barabasi_albert(45, 3, 46)),
    ];
    for (label, graph) in instances {
        let exact = exact_mis(&graph).len();
        let greedy = greedy_mis(&graph).len();
        mis_table.push(&[
            label.to_string(),
            graph.node_count().to_string(),
            exact.to_string(),
            greedy.to_string(),
            format!("{:.3}", greedy as f64 / exact.max(1) as f64),
        ]);
    }

    let mut radio_table = Table::new(
        "E10b — radio TDMA quality (300 radios, unit square, tx radius 0.035, 2048 slots)",
        &[
            "scheduler",
            "interference",
            "max access latency",
            "mean reuse/slot",
            "fairness ratio",
            "total wake-ups",
        ],
    );
    let network = RadioNetwork::random(300, 0.035, 47);
    let graph = network.interference_graph().clone();
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RoundRobinColoring::new(&graph)),
        Box::new(PhasedGreedy::new(&graph)),
        Box::new(PrefixCodeScheduler::omega(&graph)),
        Box::new(PeriodicDegreeBound::new(&graph)),
        Box::new(FirstComeFirstGrab::new(&graph, 49)),
    ];
    for scheduler in &mut schedulers {
        let report = evaluate_tdma(&network, scheduler.as_mut(), 2048);
        radio_table.push(&[
            report.scheduler.clone(),
            report.interference_detected.to_string(),
            report.max_latency().to_string(),
            format!("{:.2}", report.mean_transmitters_per_slot),
            format!("{:.3}", report.mean_fairness_ratio()),
            report.total_wakeups.to_string(),
        ]);
    }
    vec![mis_table, radio_table]
}

/// Median wall time of `reps` runs of `f`, in milliseconds.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Structural parity of the fields every engine must agree on (timing rows
/// only need a cheap witness; the exhaustive bitwise property lives in
/// `tests/analysis_parity.rs`).
fn matches_reference(analysis: &ScheduleAnalysis, reference: &ScheduleAnalysis) -> bool {
    analysis.total_happiness == reference.total_happiness
        && analysis.all_happy_sets_independent == reference.all_happy_sets_independent
        && analysis.per_node.iter().zip(&reference.per_node).all(|(a, b)| {
            a.max_unhappiness == b.max_unhappiness && a.observed_period == b.observed_period
        })
}

/// E11 — the analysis engines head-to-head at the PR 2 acceptance
/// configuration: the sequential per-holiday-verified reference, the PR 2
/// sharded + residue-cached sweep (forced), and the closed-form cycle
/// profile that `analyze_schedule` now selects (`horizon >= cycle`).  A
/// perfectly periodic schedule has only `cycle` distinct happy sets, so the
/// sweep verifies `cycle` holidays instead of `horizon`, and the closed form
/// goes further: it *emits* only `cycle` holidays and derives the rest
/// analytically.  Timings are medians over the config's repetitions; the
/// structural columns (holidays verified, parity) are deterministic.
pub fn e11_analysis_engine_with(cfg: &AnalysisBenchConfig) -> (Vec<Table>, Vec<BenchEntry>) {
    let graph = generators::erdos_renyi(cfg.nodes, cfg.edge_prob, cfg.seed);
    let horizon = cfg.horizon;
    let mut table = Table::new(
        format!(
            "E11 — analysis engines on erdos_renyi({}, {}), {} holidays, periodic-degree-bound \
             (medians of {})",
            cfg.nodes, cfg.edge_prob, horizon, cfg.reps
        ),
        &["engine", "threads", "holidays verified", "median ms", "speedup", "matches reference"],
    );
    let mut entries = Vec::new();

    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let cycle = scheduler.schedule_cycle().expect("perfectly periodic");
    let checker = GraphChecker::new(&graph);

    let mut reference = analyze_schedule_reference(&graph, &mut scheduler, horizon);
    let reference_ms = median_ms(cfg.reps, || {
        reference = analyze_schedule_reference(&graph, &mut scheduler, horizon)
    });
    table.push(&[
        "sequential reference".to_string(),
        "1".to_string(),
        horizon.to_string(),
        format!("{reference_ms:.2}"),
        "1.00x".to_string(),
        "-".to_string(),
    ]);
    entries.push(BenchEntry {
        experiment: "e11",
        engine: "sequential-reference".to_string(),
        threads: 1,
        horizon,
        median_ms: reference_ms,
        speedup: 1.0,
    });

    let ambient = rayon::current_num_threads();
    let mut runs: Vec<(&str, AnalysisEngine, usize, u64)> = vec![
        ("sharded + residue cache", AnalysisEngine::ShardedSweep, 1, cycle.min(horizon)),
        ("closed-form cycle profile", AnalysisEngine::ClosedForm, 1, cycle),
    ];
    if ambient > 1 {
        runs.insert(
            1,
            ("sharded + residue cache", AnalysisEngine::ShardedSweep, ambient, cycle.min(horizon)),
        );
    }
    for (label, engine, threads, verified) in runs {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let mut analysis = pool.install(|| {
            analyze_schedule_with_engine(&graph, &mut scheduler, horizon, &checker, engine)
        });
        let ms = median_ms(cfg.reps, || {
            analysis = pool.install(|| {
                analyze_schedule_with_engine(&graph, &mut scheduler, horizon, &checker, engine)
            });
        });
        table.push(&[
            label.to_string(),
            threads.to_string(),
            verified.to_string(),
            format!("{ms:.2}"),
            format!("{:.2}x", reference_ms / ms),
            matches_reference(&analysis, &reference).to_string(),
        ]);
        entries.push(BenchEntry {
            experiment: "e11",
            engine: label.replace(' ', "-"),
            threads,
            horizon,
            median_ms: ms,
            speedup: reference_ms / ms,
        });
    }
    (vec![table], entries)
}

/// The PR 3/4 array-of-structs derivation shape, reimplemented from the
/// profile's public accessors — the differential baseline `e12` and `e14`
/// time the struct-of-arrays derive against (and cross-check bitwise).
/// One cache-line struct per node, branchy scalar replicate/merge/finalise:
/// exactly the per-node plane PR 5 moved onto the column kernels.
pub mod aos_baseline {
    use fhg_core::analysis::{CycleProfile, NodeAnalysis, ScheduleAnalysis};
    use fhg_graph::Graph;

    const NONE: u64 = u64::MAX;

    /// One node's accumulator — the PR 2 `NodeAccum` layout.
    #[derive(Clone)]
    pub struct Accum {
        first: u64,
        last: u64,
        happy: u64,
        gap_sum: u64,
        gap_count: u64,
        first_gap: u64,
        max_streak: u64,
        uniform: bool,
    }

    impl Accum {
        fn empty() -> Self {
            Accum {
                first: NONE,
                last: NONE,
                happy: 0,
                gap_sum: 0,
                gap_count: 0,
                first_gap: NONE,
                max_streak: 0,
                uniform: true,
            }
        }

        fn record(&mut self, offset: u64) {
            self.happy += 1;
            if self.last == NONE {
                self.first = offset;
            } else {
                let gap = offset - self.last;
                self.max_streak = self.max_streak.max(gap - 1);
                self.gap_sum += gap;
                self.gap_count += 1;
                self.candidate(gap);
            }
            self.last = offset;
        }

        fn candidate(&mut self, gap: u64) {
            if self.first_gap == NONE {
                self.first_gap = gap;
            } else if self.first_gap != gap {
                self.uniform = false;
            }
        }

        fn merge(&mut self, s: &Accum) {
            if s.happy == 0 {
                return;
            }
            if self.last == NONE {
                self.first = s.first;
                self.max_streak = self.max_streak.max(s.first);
            } else {
                let gap = s.first - self.last;
                self.max_streak = self.max_streak.max(gap - 1);
                self.gap_sum += gap;
                self.gap_count += 1;
                self.candidate(gap);
            }
            self.max_streak = self.max_streak.max(s.max_streak);
            self.gap_sum += s.gap_sum;
            self.gap_count += s.gap_count;
            if s.gap_count > 0 {
                self.candidate(s.first_gap);
                if !s.uniform {
                    self.uniform = false;
                }
            }
            self.happy += s.happy;
            self.last = s.last;
        }

        fn replicate(&self, reps: u64, cycle: u64) -> Accum {
            if self.happy == 0 || reps == 0 {
                return Accum::empty();
            }
            let wrap = cycle - self.last + self.first;
            Accum {
                first: self.first,
                last: (reps - 1) * cycle + self.last,
                happy: reps * self.happy,
                gap_sum: reps * self.gap_sum + (reps - 1) * wrap,
                gap_count: reps * self.gap_count + (reps - 1),
                first_gap: if self.gap_count > 0 {
                    self.first_gap
                } else if reps > 1 {
                    wrap
                } else {
                    NONE
                },
                max_streak: if reps > 1 { self.max_streak.max(wrap - 1) } else { self.max_streak },
                uniform: self.uniform
                    && (reps == 1 || self.gap_count == 0 || self.first_gap == wrap),
            }
        }
    }

    /// The untimed setup: one-cycle accumulators replayed from the
    /// profile's stored attendance offsets (what the profile builder used
    /// to keep inline as `Vec<NodeAccum>`).
    pub fn one_cycle_accums(profile: &CycleProfile) -> Vec<Accum> {
        (0..profile.node_count())
            .map(|p| {
                let mut a = Accum::empty();
                for &o in profile.attendance_offsets(p) {
                    a.record(o);
                }
                a
            })
            .collect()
    }

    /// The timed baseline: the PR 3 derive shape, faithfully — the merged
    /// global accumulator bank is **materialised** as one `Vec<Accum>`
    /// (per-node scalar replicate + segment merges + tail replay), then a
    /// separate finalisation pass assembles the per-node analysis structs,
    /// exactly as `derive_accums` + `finalize` did before the
    /// struct-of-arrays rework.
    pub fn derive(
        profile: &CycleProfile,
        per_cycle: &[Accum],
        scheduler: &str,
        graph: &Graph,
        horizon: u64,
    ) -> Option<ScheduleAnalysis> {
        let cycle = profile.cycle();
        if horizon < cycle {
            return None;
        }
        let reps = horizon / cycle;
        let tail = horizon % cycle;
        let base = reps * cycle;
        let mut global = Vec::with_capacity(per_cycle.len());
        for (p, a) in per_cycle.iter().enumerate() {
            let mut g = Accum::empty();
            g.merge(&a.replicate(reps, cycle));
            if tail > 0 {
                let mut t = Accum::empty();
                for &o in profile.attendance_offsets(p) {
                    if o >= tail {
                        break;
                    }
                    t.record(base + o);
                }
                g.merge(&t);
            }
            global.push(g);
        }
        let per_node: Vec<NodeAnalysis> = global
            .iter()
            .enumerate()
            .map(|(p, g)| {
                let trailing = if g.last == NONE { horizon } else { horizon - 1 - g.last };
                NodeAnalysis {
                    node: p,
                    degree: graph.degree(p),
                    happy_count: g.happy,
                    max_unhappiness: g.max_streak.max(trailing),
                    observed_period: (g.uniform && g.first_gap != NONE).then_some(g.first_gap),
                    first_happy: (g.first != NONE).then_some(g.first),
                    mean_gap: if g.gap_count > 0 {
                        g.gap_sum as f64 / g.gap_count as f64
                    } else {
                        f64::NAN
                    },
                }
            })
            .collect();
        let never_happy = per_node.iter().filter(|n| n.happy_count == 0).map(|n| n.node).collect();
        let total_happiness = reps
            .saturating_mul(profile.happiness_per_cycle())
            .saturating_add(profile.happiness_prefix(tail));
        Some(ScheduleAnalysis {
            scheduler: scheduler.to_string(),
            horizon,
            mean_happy_set_size: if horizon == 0 {
                0.0
            } else {
                total_happiness as f64 / horizon as f64
            },
            per_node,
            all_happy_sets_independent: profile.all_classes_independent(),
            never_happy,
            total_happiness,
        })
    }
}

/// E12 — closed-form horizon scaling: the cost of an analysis must depend on
/// the cycle, not the horizon.  Baseline is the PR 2 sharded sweep (forced)
/// at the short horizon; the closed form must beat it by at least 3x, and a
/// long-horizon (1M-holiday) closed-form analysis must land within 2x of the
/// short one — the two acceptance criteria, witnessed by the `criterion`
/// column.  The final rows reuse one prebuilt `CycleProfile` and only
/// derive, isolating the horizon-free part — once through the
/// [`aos_baseline`] array-of-structs shape (the PR 3/4 derive) and once
/// through the production struct-of-arrays column kernels, so the layout
/// change's trajectory stays comparable run over run.  Parity witnesses are
/// genuinely independent engines: the short-horizon rows compare against
/// the sequential reference, the long-horizon rows against one (untimed)
/// sharded sweep of the full long horizon.
pub fn e12_closed_form_engine_with(cfg: &AnalysisBenchConfig) -> (Vec<Table>, Vec<BenchEntry>) {
    let graph = generators::erdos_renyi(cfg.nodes, cfg.edge_prob, cfg.seed);
    let mut table = Table::new(
        format!(
            "E12 — closed-form horizon scaling on erdos_renyi({}, {}), periodic-degree-bound \
             (medians of {}, single-threaded)",
            cfg.nodes, cfg.edge_prob, cfg.reps
        ),
        &["engine", "horizon", "median ms", "vs sweep", "matches reference", "criterion"],
    );
    let mut entries = Vec::new();

    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let checker = GraphChecker::new(&graph);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let reference = analyze_schedule_reference(&graph, &mut scheduler, cfg.horizon);

    let mut time_engine = |engine: AnalysisEngine, horizon: u64| {
        let mut analysis = pool.install(|| {
            analyze_schedule_with_engine(&graph, &mut scheduler, horizon, &checker, engine)
        });
        let ms = median_ms(cfg.reps, || {
            analysis = pool.install(|| {
                analyze_schedule_with_engine(&graph, &mut scheduler, horizon, &checker, engine)
            });
        });
        (ms, analysis)
    };

    let (sweep_ms, sweep_analysis) = time_engine(AnalysisEngine::ShardedSweep, cfg.horizon);
    let (closed_ms, closed_analysis) = time_engine(AnalysisEngine::ClosedForm, cfg.horizon);
    let (long_ms, long_analysis) = time_engine(AnalysisEngine::ClosedForm, cfg.long_horizon);

    // Independent witness for the long-horizon rows: one (untimed) sharded
    // sweep of the full long horizon — a genuinely different engine, so a
    // bug confined to the analytic fold cannot corrupt both sides.
    let long_witness = pool.install(|| {
        analyze_schedule_with_engine(
            &graph,
            &mut scheduler,
            cfg.long_horizon,
            &checker,
            AnalysisEngine::ShardedSweep,
        )
    });

    // Horizon-free derivation: build the profile once, derive the long
    // horizon from it on every repetition — once through the PR 3/4
    // array-of-structs shape (the trajectory baseline) and once through
    // the production struct-of-arrays column kernels.
    let scheduler = PeriodicDegreeBound::new(&graph);
    let view = scheduler.residue_schedule().expect("perfectly periodic");
    let profile =
        CycleProfile::build(view, scheduler.first_holiday(), graph.node_count(), &checker);
    let per_cycle = aos_baseline::one_cycle_accums(&profile);
    let mut derived_aos =
        aos_baseline::derive(&profile, &per_cycle, scheduler.name(), &graph, cfg.long_horizon)
            .unwrap();
    let derive_aos_ms = median_ms(cfg.reps, || {
        derived_aos =
            aos_baseline::derive(&profile, &per_cycle, scheduler.name(), &graph, cfg.long_horizon)
                .unwrap();
    });
    let mut derived = profile.derive(scheduler.name(), &graph, cfg.long_horizon).unwrap();
    let derive_ms = median_ms(cfg.reps, || {
        derived = profile.derive(scheduler.name(), &graph, cfg.long_horizon).unwrap();
    });
    let rows: [(&str, u64, f64, String, String, String); 5] = [
        (
            "sharded sweep (PR 2 baseline)",
            cfg.horizon,
            sweep_ms,
            "1.00x".to_string(),
            matches_reference(&sweep_analysis, &reference).to_string(),
            "-".to_string(),
        ),
        (
            "closed-form cycle profile",
            cfg.horizon,
            closed_ms,
            format!("{:.2}x", sweep_ms / closed_ms),
            matches_reference(&closed_analysis, &reference).to_string(),
            format!(">=3x vs sweep: {}", sweep_ms / closed_ms >= 3.0),
        ),
        (
            "closed-form cycle profile",
            cfg.long_horizon,
            long_ms,
            format!("{:.2}x", sweep_ms / long_ms),
            matches_reference(&long_analysis, &long_witness).to_string(),
            format!("<=2x of short horizon: {}", long_ms <= 2.0 * closed_ms),
        ),
        (
            "derive only (AoS baseline)",
            cfg.long_horizon,
            derive_aos_ms,
            format!("{:.2}x", sweep_ms / derive_aos_ms),
            matches_reference(&derived_aos, &long_witness).to_string(),
            "horizon-free".to_string(),
        ),
        (
            "derive only (SoA kernels)",
            cfg.long_horizon,
            derive_ms,
            format!("{:.2}x", sweep_ms / derive_ms),
            matches_reference(&derived, &long_witness).to_string(),
            "horizon-free".to_string(),
        ),
    ];
    for (label, horizon, ms, vs, parity, criterion) in rows {
        table.push(&[
            label.to_string(),
            horizon.to_string(),
            format!("{ms:.2}"),
            vs,
            parity,
            criterion,
        ]);
        entries.push(BenchEntry {
            experiment: "e12",
            engine: label.replace(' ', "-"),
            threads: 1,
            horizon,
            median_ms: ms,
            speedup: sweep_ms / ms,
        });
    }
    (vec![table], entries)
}

/// Word-packed residue rows grouped per distinct modulus — `(modulus, one
/// bit row per residue)` — the raw-word form of a `ResidueTable`, shared by
/// experiment `e13` and `benches/kernels.rs` so both drive byte-identical
/// inputs.
pub type ModulusRows = Vec<(u64, Vec<Vec<u64>>)>;

/// Rebuilds the word-packed emission rows of `view` (one bit row per
/// `(modulus, residue)` pair) from its public assignment, plus the row
/// width in words.  This is the input the kernel-level emission paths of
/// `e13` and the kernels bench gather from.
pub fn emission_rows(
    view: &fhg_core::schedulers::residue::ResidueSchedule,
) -> (usize, ModulusRows) {
    let n = view.node_count();
    let words = n.div_ceil(64);
    let mut distinct: Vec<u64> = (0..n).map(|p| view.modulus(p)).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let mut rows: ModulusRows =
        distinct.iter().map(|&m| (m, vec![vec![0u64; words]; m as usize])).collect();
    for p in 0..n {
        let gi = distinct.binary_search(&view.modulus(p)).expect("modulus is distinct");
        rows[gi].1[view.slot(p) as usize][p / 64] |= 1u64 << (p % 64);
    }
    (words, rows)
}

/// Drives `horizon` holidays of the residue emission at raw-word level:
/// per holiday, gather one row per distinct modulus and combine them into
/// `dst` with `emit` (which owns the whole per-holiday write, zeroing
/// included where its strategy needs one), returning the summed
/// cardinalities (the checksum every emission path must agree on).
pub fn fill_sweep(
    rows: &ModulusRows,
    words: usize,
    horizon: u64,
    mut emit: impl FnMut(&mut [u64], &[&[u64]]) -> u64,
) -> u64 {
    let mut dst = vec![0u64; words];
    let mut refs: Vec<&[u64]> = Vec::with_capacity(rows.len());
    let mut sum = 0u64;
    for t in 0..horizon {
        refs.clear();
        for (m, residue_rows) in rows {
            let r = if m.is_power_of_two() { t & (m - 1) } else { t % m };
            refs.push(residue_rows[r as usize].as_slice());
        }
        sum += emit(&mut dst, &refs);
    }
    sum
}

/// E13 — the fused word-kernel subsystem: the closed form is emission-bound
/// (ROADMAP "Scale directions" after PR 3), so this experiment times the
/// per-holiday fill at the E11 configuration under three emission paths on
/// identical row data: the PR 3 scalar shape (reset memset, one full `dst`
/// OR pass per distinct modulus, then a separate popcount rescan), the
/// fused gather+popcount kernel (`set_rows_count`: one write-only pass,
/// rows indexed inner, count fused) forced portable, and the same kernel as
/// dispatched (AVX2 wide wherever supported, `FHG_KERNEL` override).  A
/// fourth row drives the production `ResidueSchedule::fill` end to end.
/// All paths must produce identical cardinality checksums, and a second
/// table witnesses that the production analysis engines still match
/// `analyze_schedule_reference` bitwise after the kernel refactor.
/// Acceptance: the dispatched fused path is at least 2x faster than the
/// scalar shape (the `criterion` column).
pub fn e13_fused_kernel_emission_with(cfg: &AnalysisBenchConfig) -> (Vec<Table>, Vec<BenchEntry>) {
    use fhg_graph::kernels::{self, KernelMode};

    let graph = generators::erdos_renyi(cfg.nodes, cfg.edge_prob, cfg.seed);
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let view = scheduler.residue_schedule().expect("perfectly periodic").clone();
    let n = view.node_count();
    let horizon = cfg.horizon;

    // The word-packed emission rows (one bit row per (modulus, residue))
    // rebuilt from the schedule's public assignment, so the scalar and
    // fused paths run on byte-identical inputs.
    let (words, rows) = emission_rows(&view);

    let mut table = Table::new(
        format!(
            "E13 — fused kernel emission on erdos_renyi({}, {}), {} fills of {} distinct-modulus \
             rows x {} words (medians of {})",
            cfg.nodes,
            cfg.edge_prob,
            horizon,
            rows.len(),
            words,
            cfg.reps
        ),
        &["emission path", "kernel mode", "median ms", "speedup vs scalar", "criterion"],
    );
    let mut entries = Vec::new();

    let mut scalar_sum = 0u64;
    let scalar_ms = median_ms(cfg.reps, || {
        scalar_sum = fill_sweep(&rows, words, horizon, kernels::scalar::set_rows_count);
    });
    let mut portable_sum = 0u64;
    let portable_ms = median_ms(cfg.reps, || {
        portable_sum = fill_sweep(&rows, words, horizon, |dst, refs| {
            kernels::set_rows_count_in(KernelMode::Portable, dst, refs)
        });
    });
    let mut fused_sum = 0u64;
    let fused_ms = median_ms(cfg.reps, || {
        fused_sum = fill_sweep(&rows, words, horizon, kernels::set_rows_count);
    });
    let mut fill_sum = 0u64;
    let fill_ms = median_ms(cfg.reps, || {
        let mut buf = fhg_graph::HappySet::new(n);
        fill_sum = 0;
        for t in 0..horizon {
            view.fill(t, &mut buf);
            fill_sum += buf.len() as u64;
        }
    });
    assert_eq!(scalar_sum, portable_sum, "portable kernel checksum diverged");
    assert_eq!(scalar_sum, fused_sum, "dispatched kernel checksum diverged");
    assert_eq!(scalar_sum, fill_sum, "ResidueSchedule::fill checksum diverged");

    let active = match KernelMode::active() {
        KernelMode::Wide512 => "wide512",
        KernelMode::Wide => "wide",
        KernelMode::Portable => "portable",
    };
    let rows_out: [(&str, &str, f64, String); 4] = [
        ("scalar reset+OR-then-rescan (PR 3 shape)", "-", scalar_ms, "-".to_string()),
        ("fused gather+popcount", "portable", portable_ms, "-".to_string()),
        (
            "fused gather+popcount (dispatched)",
            active,
            fused_ms,
            format!(">=2x vs scalar: {}", scalar_ms / fused_ms >= 2.0),
        ),
        ("ResidueSchedule::fill end-to-end", active, fill_ms, "-".to_string()),
    ];
    let engine_label = |path: &str, mode: &str| {
        if mode == "-" {
            path.replace(' ', "-")
        } else {
            format!("{}-{}", path.replace(' ', "-"), mode)
        }
    };
    for (path, mode, ms, criterion) in rows_out {
        table.push(&[
            path.to_string(),
            mode.to_string(),
            format!("{ms:.3}"),
            format!("{:.2}x", scalar_ms / ms),
            criterion,
        ]);
        entries.push(BenchEntry {
            experiment: "e13",
            engine: engine_label(path, mode),
            threads: 1,
            horizon,
            median_ms: ms,
            speedup: scalar_ms / ms,
        });
    }

    // Parity witness: the production engines, forced per engine, still
    // match the sequential reference bitwise after the kernel refactor.
    let mut parity = Table::new(
        "E13b — engine parity after the kernel refactor (same graph, short horizon)",
        &["engine", "horizon", "matches reference"],
    );
    let checker = GraphChecker::new(&graph);
    let reference = analyze_schedule_reference(&graph, &mut scheduler, horizon);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    for (label, engine) in [
        ("closed-form cycle profile", AnalysisEngine::ClosedForm),
        ("sharded + residue cache", AnalysisEngine::ShardedSweep),
    ] {
        let analysis = pool.install(|| {
            analyze_schedule_with_engine(&graph, &mut scheduler, horizon, &checker, engine)
        });
        parity.push(&[
            label.to_string(),
            horizon.to_string(),
            matches_reference(&analysis, &reference).to_string(),
        ]);
    }

    (vec![table, parity], entries)
}

/// E14 — the SoA accumulation plane and the sharded parallel profile
/// build.  Two tables:
///
/// * **E14a** (the E12 configuration): the prebuilt-profile derivation
///   head-to-head — the PR 3/4 array-of-structs shape ([`aos_baseline`]),
///   the production struct-of-arrays column-kernel derive (acceptance:
///   ≥ 1.8x over AoS), the totals-only fast path with reused scratch
///   (skips per-node assembly and float work), and the closed-form
///   end-to-end analysis at the short horizon (acceptance on the full
///   config: ≤ 1.0 ms).  All derivations are cross-checked structurally.
///
/// * **E14b** (`cycle ≈ 10⁵`, two interleaved moduli whose lcm is the
///   cycle, an edgeless conflict graph so verification does full-row
///   AND scans with no early exit): `CycleProfile::build` at 1/2/8
///   worker threads — the class walk shards across the persistent pool
///   and the per-shard banks merge through the exact column kernels, so
///   the build is bitwise-identical at every thread count (asserted),
///   with wall-clock scaling wherever the host actually has cores
///   (acceptance: ≥ 2x at 8 threads on a multi-core host; a 1-core
///   container reports the measured factor honestly).  Derive-only and
///   totals-only rows on the same long-cycle profile round out the
///   table.
pub fn e14_soa_derive_and_parallel_build_with(
    cfg: &AnalysisBenchConfig,
) -> (Vec<Table>, Vec<BenchEntry>) {
    use fhg_core::analysis::DeriveScratch;
    use fhg_core::schedulers::residue::ResidueSchedule;

    let mut entries = Vec::new();

    // Sub-millisecond measurements: many more repetitions than the
    // multi-ms experiments, or the median is container noise.
    let derive_reps = cfg.reps * 7;

    // --- E14a: the derivation plane on the E12 configuration. ---
    let graph = generators::erdos_renyi(cfg.nodes, cfg.edge_prob, cfg.seed);
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let checker = GraphChecker::new(&graph);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let view = scheduler.residue_schedule().expect("perfectly periodic").clone();
    let profile = pool.install(|| {
        CycleProfile::build(&view, scheduler.first_holiday(), graph.node_count(), &checker)
    });
    let per_cycle = aos_baseline::one_cycle_accums(&profile);

    let mut derive_table = Table::new(
        format!(
            "E14a — prebuilt-profile derivation on erdos_renyi({}, {}), horizon {} (medians of \
             {}, single-threaded)",
            cfg.nodes, cfg.edge_prob, cfg.long_horizon, derive_reps
        ),
        &["path", "horizon", "median ms", "speedup vs AoS", "criterion"],
    );

    let mut derived_aos =
        aos_baseline::derive(&profile, &per_cycle, scheduler.name(), &graph, cfg.long_horizon)
            .unwrap();
    let aos_ms = median_ms(derive_reps, || {
        derived_aos =
            aos_baseline::derive(&profile, &per_cycle, scheduler.name(), &graph, cfg.long_horizon)
                .unwrap();
    });
    let mut scratch = DeriveScratch::new();
    let mut derived_soa =
        profile.derive_with(scheduler.name(), &graph, cfg.long_horizon, &mut scratch).unwrap();
    let soa_ms = median_ms(derive_reps, || {
        derived_soa =
            profile.derive_with(scheduler.name(), &graph, cfg.long_horizon, &mut scratch).unwrap();
    });
    let mut totals = profile.derive_totals_with(cfg.long_horizon, &mut scratch).unwrap();
    let totals_ms = median_ms(derive_reps, || {
        totals = profile.derive_totals_with(cfg.long_horizon, &mut scratch).unwrap();
    });
    // Parity: the SoA derive must match the AoS baseline structurally, and
    // the totals-only fast path must equal the reduced full derive exactly.
    assert!(matches_reference(&derived_soa, &derived_aos), "SoA derive diverged from AoS");
    assert_eq!(totals, derived_soa.totals(), "totals fast path diverged from the full derive");
    // End-to-end closed form at the short horizon (build + derive).
    let e2e_ms = median_ms(derive_reps, || {
        let analysis = pool.install(|| {
            analyze_schedule_with_engine(
                &graph,
                &mut scheduler,
                cfg.horizon,
                &checker,
                AnalysisEngine::ClosedForm,
            )
        });
        assert!(analysis.all_happy_sets_independent);
    });

    // The full derive is floored by the per-node f64 divisions both layouts
    // pay (mean_gap is in the output), so its >=1.8x criterion is reported
    // honestly (typically unmet); the totals-only path skips the float
    // finalisation entirely, which is where the speedup actually lands —
    // both criteria are printed so neither can masquerade as the other.
    let derive_rows: [(&str, u64, f64, String); 4] = [
        ("derive (AoS baseline)", cfg.long_horizon, aos_ms, "-".to_string()),
        (
            "derive (SoA fused)",
            cfg.long_horizon,
            soa_ms,
            format!(">=1.8x vs AoS: {}", aos_ms / soa_ms >= 1.8),
        ),
        (
            "derive totals-only (SoA, no float finalise)",
            cfg.long_horizon,
            totals_ms,
            format!(">=1.8x vs AoS: {}", aos_ms / totals_ms >= 1.8),
        ),
        (
            "closed-form end-to-end (build + derive)",
            cfg.horizon,
            e2e_ms,
            format!("<=1.0ms: {}", e2e_ms <= 1.0),
        ),
    ];
    for (path, horizon, ms, criterion) in derive_rows {
        derive_table.push(&[
            path.to_string(),
            horizon.to_string(),
            format!("{ms:.3}"),
            format!("{:.2}x", aos_ms / ms),
            criterion,
        ]);
        entries.push(BenchEntry {
            experiment: "e14",
            engine: path.replace(' ', "-"),
            threads: 1,
            horizon,
            median_ms: ms,
            speedup: aos_ms / ms,
        });
    }

    // --- E14b: the sharded parallel profile build on a long cycle. ---
    let n = cfg.build_nodes;
    let (m_a, m_b) = cfg.build_moduli;
    let cycle = cfg.build_cycle();
    // Interleaved moduli with spread slots; an edgeless conflict graph
    // keeps the schedule trivially independent, so every class is verified
    // with full-row AND scans (no early exit) and the per-shard
    // short-circuit never fires — the honest verification-bound shape.
    let slots: Vec<u64> = (0..n as u64)
        .map(|p| {
            let m = if p % 2 == 0 { m_a } else { m_b };
            p.wrapping_mul(0x9E37_79B9) % m
        })
        .collect();
    let moduli: Vec<u64> = (0..n as u64).map(|p| if p % 2 == 0 { m_a } else { m_b }).collect();
    let schedule = ResidueSchedule::new(slots, moduli);
    assert_eq!(schedule.cycle(), cycle);
    let build_graph = fhg_graph::Graph::new(n);
    let build_checker = GraphChecker::new(&build_graph);

    let mut build_table = Table::new(
        format!(
            "E14b — parallel CycleProfile build, {} nodes, moduli ({}, {}), cycle {} (build \
             medians of {}, derive medians of {}; wall-clock scaling requires physical cores)",
            n, m_a, m_b, cycle, cfg.reps, derive_reps
        ),
        &["path", "threads", "median ms", "speedup vs 1 thread", "criterion"],
    );

    let mut profiles: Vec<(usize, f64)> = Vec::new();
    let mut witness: Option<fhg_core::analysis::ScheduleAnalysis> = None;
    let mut build_1t_ms = 0.0f64;
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let mut built = pool.install(|| CycleProfile::build(&schedule, 0, n, &build_checker));
        let ms = median_ms(cfg.reps, || {
            built = pool.install(|| CycleProfile::build(&schedule, 0, n, &build_checker));
        });
        if threads == 1 {
            build_1t_ms = ms;
        }
        // Bitwise parity across thread counts, witnessed through the
        // derived analysis (every stored column and offset feeds it).
        let derived = built.derive("e14b", &build_graph, 2 * cycle + 7).unwrap();
        match &witness {
            None => witness = Some(derived),
            Some(w) => {
                assert!(
                    matches_reference(&derived, w),
                    "{threads}-thread build diverged from the 1-thread profile"
                );
            }
        }
        profiles.push((threads, ms));
    }
    for (threads, ms) in &profiles {
        let speedup = build_1t_ms / ms;
        let criterion = if *threads == 8 {
            format!(">=2x at 8 threads: {}", speedup >= 2.0)
        } else {
            "-".to_string()
        };
        build_table.push(&[
            "profile build (sharded classes)".to_string(),
            threads.to_string(),
            format!("{ms:.2}"),
            format!("{speedup:.2}x"),
            criterion,
        ]);
        entries.push(BenchEntry {
            experiment: "e14",
            engine: "profile-build-sharded".to_string(),
            threads: *threads,
            horizon: cycle,
            median_ms: *ms,
            speedup,
        });
    }

    // Derive rows on the long-cycle profile: the attendance CSR here is
    // ~cycle-sized per node pair, so derivation is events-bound.
    let long_profile = CycleProfile::build(&schedule, 0, n, &build_checker);
    let horizon = 4 * cycle + 3;
    let mut scratch = DeriveScratch::new();
    let mut full = long_profile.derive_with("e14b", &build_graph, horizon, &mut scratch).unwrap();
    let derive_ms = median_ms(derive_reps, || {
        full = long_profile.derive_with("e14b", &build_graph, horizon, &mut scratch).unwrap();
    });
    let mut totals = long_profile.derive_totals_with(horizon, &mut scratch).unwrap();
    let totals_ms = median_ms(derive_reps, || {
        totals = long_profile.derive_totals_with(horizon, &mut scratch).unwrap();
    });
    assert_eq!(totals, full.totals(), "long-cycle totals fast path diverged");
    for (path, ms) in
        [("derive only (SoA kernels)", derive_ms), ("derive totals-only (SoA)", totals_ms)]
    {
        build_table.push(&[
            path.to_string(),
            "1".to_string(),
            format!("{ms:.3}"),
            "-".to_string(),
            "-".to_string(),
        ]);
        entries.push(BenchEntry {
            experiment: "e14",
            engine: format!("long-cycle-{}", path.replace(' ', "-")),
            threads: 1,
            horizon,
            median_ms: ms,
            // No comparable baseline row for the long-cycle derivations —
            // a build-to-derive ratio would be meaningless in the
            // trajectory, so these rows are their own baseline.
            speedup: 1.0,
        });
    }

    (vec![derive_table, build_table], entries)
}

/// E15 — verification throughput: batched residue-class checking, the
/// blocked adjacency layout and the three-arm kernel dispatch.  Three
/// tables:
///
/// * **E15a** (the E12 configuration): per-class `check` vs batched
///   `check_batch` over the same materialised residue classes, on the flat
///   and blocked adjacency layouts plus the default layout pick
///   (acceptance: batched ≥ 2x over the per-class baseline), and the
///   closed-form end-to-end analysis at the short horizon riding the
///   batched build (acceptance on the full config: ≤ 0.8 ms — the e14
///   criterion tightened by batching).
///
/// * **E15b**: the `intersects_many` row-broadcast kernel itself, per
///   dispatch arm (`portable` always, `wide` under AVX2, `wide512` where
///   AVX-512 is detected), checksum-pinned across arms.
///
/// * **E15c**: a conflict graph **above** `DENSE_ADJACENCY_LIMIT` — the
///   seed fell back to CSR probes there; the blocked 256×256-bit tile
///   hybrid now keeps it on a dense-style path at bounded memory
///   (acceptance: layout is `blocked`, not `csr`, with peak adjacency
///   memory reported in the row and far below the flat `n²/8`).
pub fn e15_verification_throughput_with(
    cfg: &AnalysisBenchConfig,
) -> (Vec<Table>, Vec<BenchEntry>) {
    use fhg_core::analysis::{HolidayChecker, DENSE_ADJACENCY_LIMIT};
    use fhg_core::schedulers::residue::ResidueSchedule;
    use fhg_graph::kernels::{self, KernelMode};
    use fhg_graph::properties::MembershipTable;
    use fhg_graph::{FixedBitSet, HappySet};

    let mut entries = Vec::new();
    let graph = generators::erdos_renyi(cfg.nodes, cfg.edge_prob, cfg.seed);
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let view = scheduler.residue_schedule().expect("perfectly periodic").clone();
    let n = view.node_count();

    // Materialise the classes once (the E12 configuration probes
    // `cfg.horizon` of them) so every layout and both granularities run on
    // byte-identical inputs.
    let classes: Vec<(u64, FixedBitSet)> = {
        let mut buf = HappySet::new(n);
        (0..cfg.horizon)
            .map(|t| {
                view.fill(t, &mut buf);
                (t, buf.as_bitset().clone())
            })
            .collect()
    };
    let refs: Vec<(u64, &FixedBitSet)> = classes.iter().map(|(t, s)| (*t, s)).collect();

    // --- E15a: per-class vs batched, per adjacency layout. ---
    let default_layout = GraphChecker::new(&graph).layout();
    let mut table = Table::new(
        format!(
            "E15a — verification throughput on erdos_renyi({}, {}), {} residue classes in \
             batches of 64 (medians of {}; default layout here: {})",
            cfg.nodes, cfg.edge_prob, cfg.horizon, cfg.reps, default_layout
        ),
        &["path", "layout", "median ms", "speedup vs per-class", "criterion"],
    );
    for (layout_label, flat_limit, blocked_limit) in
        [("flat", usize::MAX, usize::MAX), ("blocked", 0, usize::MAX)]
    {
        let checker = GraphChecker::with_limits(&graph, flat_limit, blocked_limit);
        assert_eq!(checker.layout(), layout_label);
        let per_class_ms = median_ms(cfg.reps, || {
            let mut ok = true;
            for &(t, set) in &refs {
                ok &= checker.check(t, set);
            }
            assert!(ok, "the periodic schedule must verify");
        });
        let batched_ms = median_ms(cfg.reps, || {
            let mut ok = true;
            for chunk in refs.chunks(64) {
                ok &= checker.check_batch(chunk);
            }
            assert!(ok, "the periodic schedule must verify in batches");
        });
        let speedup = per_class_ms / batched_ms;
        // The >=2x criterion sits on the blocked row: the E12 configuration
        // (10k nodes) is above DENSE_ADJACENCY_LIMIT, so that is the layout
        // `GraphChecker::new` gives it.  On the flat layout residue classes
        // partition the nodes, so batching cannot amortise row loads and the
        // row is informational (parity only, asserted above).
        let criterion = if layout_label == "blocked" {
            format!(">=2x vs per-class: {}", speedup >= 2.0)
        } else {
            "- (informational)".to_string()
        };
        let rows: [(&str, f64, f64, String); 2] = [
            ("per-class check", per_class_ms, 1.0, "-".to_string()),
            ("batched check_batch (64-wide)", batched_ms, speedup, criterion),
        ];
        for (path, ms, speedup, criterion) in rows {
            table.push(&[
                path.to_string(),
                layout_label.to_string(),
                format!("{ms:.3}"),
                format!("{speedup:.2}x"),
                criterion,
            ]);
            entries.push(BenchEntry {
                experiment: "e15",
                engine: format!("{}-{}", path.replace(' ', "-"), layout_label),
                threads: 1,
                horizon: cfg.horizon,
                median_ms: ms,
                speedup,
            });
        }
    }
    // Closed-form end-to-end at the short horizon, now riding the batched
    // build (the e14 criterion was <= 1.0 ms; batching tightens it).
    let checker = GraphChecker::new(&graph);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let e2e_ms = median_ms(cfg.reps * 7, || {
        let analysis = pool.install(|| {
            analyze_schedule_with_engine(
                &graph,
                &mut scheduler,
                cfg.horizon,
                &checker,
                AnalysisEngine::ClosedForm,
            )
        });
        assert!(analysis.all_happy_sets_independent);
    });
    table.push(&[
        "closed-form end-to-end (batched build + derive)".to_string(),
        default_layout.to_string(),
        format!("{e2e_ms:.3}"),
        "-".to_string(),
        format!("<=0.8ms: {}", e2e_ms <= 0.8),
    ]);
    entries.push(BenchEntry {
        experiment: "e15",
        engine: format!("closed-form-end-to-end-batched-{default_layout}"),
        threads: 1,
        horizon: cfg.horizon,
        median_ms: e2e_ms,
        speedup: 1.0,
    });

    // --- E15b: the row-broadcast kernel per dispatch arm. ---
    // The raw adjacency rows (rebuilt from the graph so the bench does not
    // reach into checker internals) against one 64-class membership table —
    // exactly the inner loop of the flat batched check.
    let mut rows: Vec<FixedBitSet> = (0..n).map(|_| FixedBitSet::new(n)).collect();
    for (u, row) in rows.iter_mut().enumerate() {
        for &v in graph.neighbors(u) {
            row.insert(v);
        }
    }
    let mut mt = MembershipTable::new();
    mt.fill(n, classes.iter().take(64).map(|(_, s)| s));
    let mut members = Vec::new();
    kernels::for_each_set_bit(mt.union(), |u| members.push(u));
    let mut arms = vec![KernelMode::Portable];
    if KernelMode::wide_supported() {
        arms.push(KernelMode::Wide);
    }
    if KernelMode::wide512_supported() {
        arms.push(KernelMode::Wide512);
    }
    let mut kernel_table = Table::new(
        format!(
            "E15b — intersects_many row broadcast, {} members x 64 lanes x {} words (medians \
             of {})",
            members.len(),
            n.div_ceil(64),
            cfg.reps * 7
        ),
        &["kernel arm", "median ms", "speedup vs portable", "checksum stable"],
    );
    let mut portable_kernel_ms = 0.0f64;
    let mut expected_sum = 0u64;
    for &mode in &arms {
        let mut sum = 0u64;
        let ms = median_ms(cfg.reps * 7, || {
            sum = 0;
            for _ in 0..8 {
                for &u in &members {
                    sum ^= kernels::intersects_many_in(mode, rows[u].as_words(), mt.lanes())
                        & mt.lane(u);
                }
            }
        });
        let label = match mode {
            KernelMode::Portable => {
                portable_kernel_ms = ms;
                expected_sum = sum;
                "portable"
            }
            KernelMode::Wide => "wide",
            KernelMode::Wide512 => "wide512",
        };
        assert_eq!(sum, expected_sum, "kernel arm {label} checksum diverged");
        kernel_table.push(&[
            label.to_string(),
            format!("{ms:.3}"),
            format!("{:.2}x", portable_kernel_ms / ms),
            "true".to_string(),
        ]);
        entries.push(BenchEntry {
            experiment: "e15",
            engine: format!("intersects-many-{label}"),
            threads: 1,
            horizon: cfg.horizon,
            median_ms: ms,
            speedup: portable_kernel_ms / ms,
        });
    }

    // --- E15c: dense-style verification above the old dense limit. ---
    let big_n = 4 * DENSE_ADJACENCY_LIMIT;
    let big = generators::erdos_renyi(big_n, 8.0 / big_n as f64, cfg.seed ^ 0x15);
    let big_checker = GraphChecker::new(&big);
    let mem = big_checker.memory_bytes();
    let flat_mem = big_n * big_n.div_ceil(64) * 8;
    let (m_a, m_b) = cfg.build_moduli;
    let big_slots: Vec<u64> = (0..big_n as u64)
        .map(|p| {
            let m = if p % 2 == 0 { m_a } else { m_b };
            p.wrapping_mul(0x9E37_79B9) % m
        })
        .collect();
    let big_moduli: Vec<u64> =
        (0..big_n as u64).map(|p| if p % 2 == 0 { m_a } else { m_b }).collect();
    let big_schedule = ResidueSchedule::new(big_slots, big_moduli);
    let big_classes: Vec<FixedBitSet> = {
        let mut buf = HappySet::new(big_n);
        (0..256u64)
            .map(|t| {
                big_schedule.fill(t, &mut buf);
                buf.as_bitset().clone()
            })
            .collect()
    };
    let big_refs: Vec<(u64, &FixedBitSet)> =
        big_classes.iter().enumerate().map(|(t, s)| (t as u64, s)).collect();
    let mut big_table = Table::new(
        format!(
            "E15c — dense-style verification above DENSE_ADJACENCY_LIMIT: erdos_renyi({}, \
             avg degree 8), 256 classes (medians of {})",
            big_n, cfg.reps
        ),
        &["path", "layout", "peak adjacency MiB", "median ms", "criterion"],
    );
    let csr_checker = GraphChecker::with_limits(&big, 0, 0);
    // Residue collisions on a random graph mean some classes legitimately
    // fail; the layouts must agree on exactly how many batches do.
    let mut batch_failures = Vec::new();
    for checker in [&big_checker, &csr_checker] {
        let mut fails = 0u32;
        let ms = median_ms(cfg.reps, || {
            fails = 0;
            for chunk in big_refs.chunks(64) {
                fails += u32::from(!checker.check_batch(chunk));
            }
        });
        batch_failures.push(fails);
        let criterion = if checker.layout() == "blocked" {
            format!(
                "blocked (not csr) at <=1/4 of flat {:.0} MiB: {}",
                flat_mem as f64 / (1 << 20) as f64,
                mem * 4 <= flat_mem
            )
        } else {
            "-".to_string()
        };
        big_table.push(&[
            "batched check_batch (64-wide)".to_string(),
            checker.layout().to_string(),
            format!("{:.1}", checker.memory_bytes() as f64 / (1 << 20) as f64),
            format!("{ms:.3}"),
            criterion,
        ]);
        entries.push(BenchEntry {
            experiment: "e15",
            engine: format!(
                "dense-speed-{}-{}-mem-{}B",
                big_n,
                checker.layout(),
                checker.memory_bytes()
            ),
            threads: 1,
            horizon: 256,
            median_ms: ms,
            speedup: 1.0,
        });
    }
    assert_eq!(
        batch_failures[0], batch_failures[1],
        "blocked and CSR layouts disagreed on the batch verdicts"
    );
    assert_eq!(
        big_checker.layout(),
        "blocked",
        "{big_n} nodes must take the blocked dense path, not CSR"
    );

    (vec![table, kernel_table, big_table], entries)
}

/// E16 — the windowed profile-serving tier under sustained load.
///
/// A load generator registers `cfg.serve_tenants` independent tenant
/// schedules (small Erdős–Rényi conflict graphs, each under a
/// `PeriodicDegreeBound` schedule), builds every profile once through the
/// sharded `ProfileService::build_pending`, then replays
/// `cfg.serve_queries` windowed queries with LCG-drawn tenants and ragged
/// `[t0, t1)` windows.  Reported per path: p50/p99 per-query latency and
/// sustained queries/sec — the acceptance criterion is ≥10⁴ windowed
/// totals-queries/sec on a single core over ≥1k warm tenants.
pub fn e16_windowed_serving_with(cfg: &AnalysisBenchConfig) -> (Vec<Table>, Vec<BenchEntry>) {
    use fhg_core::serving::{ProfileService, Query};

    let mut entries = Vec::new();
    let tenants = cfg.serve_tenants;

    // --- Registration: one small conflict graph + periodic schedule per
    // tenant, sizes jittered so the cached cycles differ across tenants. ---
    let mut service = ProfileService::new();
    for i in 0..tenants {
        let n = 40 + (i % 17) * 2;
        let graph = generators::erdos_renyi(n, 4.0 / n as f64, 0xE16 ^ i as u64);
        let scheduler = PeriodicDegreeBound::new(&graph);
        service
            .register(i as u64, &graph, &scheduler)
            .expect("periodic tenants must register cleanly");
    }
    assert_eq!(service.tenant_count(), tenants);

    // --- Sharded cold build across the persistent pool. ---
    let build_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(build_threads).build().unwrap();
    let t0 = Instant::now();
    let built = pool.install(|| service.build_pending());
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(built >= 1 && built <= tenants, "every cold key builds exactly once");
    assert_eq!(service.warm_count(), service.key_count());

    // --- The query mix: LCG-drawn tenant + ragged window per request.
    // Widths span sub-cycle through many-cycle; starts are arbitrary
    // phases, so head/middle/tail of the start-offset fold all stay hot. ---
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    let queries: Vec<Query> = (0..cfg.serve_queries)
        .map(|_| {
            let tenant = next() % tenants as u64;
            let t0 = next() % (1 << 16);
            let width = next() % (1 << 12);
            Query { tenant, window: (t0, t0 + width) }
        })
        .collect();

    let percentile =
        |sorted: &[u64], p: usize| -> f64 { sorted[(sorted.len() - 1) * p / 100] as f64 / 1e6 };
    let mut table = Table::new(
        format!(
            "E16 — windowed serving over {tenants} cached tenants ({built} profiles built in \
             {build_ms:.1} ms on {build_threads} threads), {} LCG queries per path",
            cfg.serve_queries
        ),
        &["path", "threads", "p50 latency µs", "p99 latency µs", "queries/s", "criterion"],
    );
    entries.push(BenchEntry {
        experiment: "e16",
        engine: "profile-build".into(),
        threads: build_threads,
        horizon: tenants as u64,
        median_ms: build_ms,
        speedup: 1.0,
    });

    // --- Single-core sustained totals queries (the acceptance path). ---
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(queries.len());
    let mut checksum = 0u64;
    let wall = Instant::now();
    for q in &queries {
        let t = Instant::now();
        let totals = service.query_totals(q.tenant, q.window.0, q.window.1).unwrap();
        latencies_ns.push(t.elapsed().as_nanos() as u64);
        checksum = checksum.wrapping_add(totals.total_happiness);
    }
    let totals_qps = queries.len() as f64 / wall.elapsed().as_secs_f64();
    assert!(checksum > 0, "the query mix must touch non-trivial windows");
    latencies_ns.sort_unstable();
    let (p50, p99) = (percentile(&latencies_ns, 50), percentile(&latencies_ns, 99));
    table.push(&[
        "query_totals (steady-state fold)".into(),
        "1".into(),
        format!("{:.2}", p50 * 1e3),
        format!("{:.2}", p99 * 1e3),
        format!("{totals_qps:.0}"),
        format!(">=10000 q/s/core: {}", totals_qps >= 1e4),
    ]);
    entries.push(BenchEntry {
        experiment: "e16",
        engine: "windowed-totals-qps".into(),
        threads: 1,
        horizon: queries.len() as u64,
        median_ms: p50,
        speedup: totals_qps,
    });
    entries.push(BenchEntry {
        experiment: "e16",
        engine: "windowed-totals-p99".into(),
        threads: 1,
        horizon: queries.len() as u64,
        median_ms: p99,
        speedup: 1.0,
    });

    // --- Full per-node analyses (allocates the per-node vector, so it is
    // the expensive tier; a quarter of the mix keeps the runtime flat). ---
    let full_queries = &queries[..queries.len() / 4];
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(full_queries.len());
    let wall = Instant::now();
    for q in full_queries {
        let t = Instant::now();
        let analysis = service.query(q.tenant, q.window.0, q.window.1).unwrap();
        latencies_ns.push(t.elapsed().as_nanos() as u64);
        checksum = checksum.wrapping_add(analysis.per_node.len() as u64);
    }
    let full_qps = full_queries.len() as f64 / wall.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();
    let (p50, p99) = (percentile(&latencies_ns, 50), percentile(&latencies_ns, 99));
    table.push(&[
        "query (full per-node analysis)".into(),
        "1".into(),
        format!("{:.2}", p50 * 1e3),
        format!("{:.2}", p99 * 1e3),
        format!("{full_qps:.0}"),
        "- (informational)".into(),
    ]);
    entries.push(BenchEntry {
        experiment: "e16",
        engine: "windowed-full-qps".into(),
        threads: 1,
        horizon: full_queries.len() as u64,
        median_ms: p50,
        speedup: full_qps,
    });
    entries.push(BenchEntry {
        experiment: "e16",
        engine: "windowed-full-p99".into(),
        threads: 1,
        horizon: full_queries.len() as u64,
        median_ms: p99,
        speedup: 1.0,
    });

    // --- The batch front: the same mix through `query_batch`, sharded
    // across the pool in 4096-query slabs. ---
    let wall = Instant::now();
    let mut served = 0usize;
    for slab in queries.chunks(4096) {
        let responses = pool.install(|| service.query_batch(slab));
        served += responses.iter().filter(|r| r.is_ok()).count();
    }
    let batch_secs = wall.elapsed().as_secs_f64();
    let batch_qps = served as f64 / batch_secs;
    assert_eq!(served, queries.len(), "every batched query must be answerable");
    table.push(&[
        "query_batch (4096-query slabs)".into(),
        build_threads.to_string(),
        "-".into(),
        "-".into(),
        format!("{batch_qps:.0}"),
        // With one worker the batch front is the single-core path plus
        // slab bookkeeping, so the scaling criterion only binds when the
        // pool actually has parallelism.
        if build_threads > 1 {
            format!(">= single-core qps: {}", batch_qps >= totals_qps)
        } else {
            "- (single worker)".into()
        },
    ]);
    entries.push(BenchEntry {
        experiment: "e16",
        engine: "windowed-batch-qps".into(),
        threads: build_threads,
        horizon: queries.len() as u64,
        median_ms: batch_secs * 1e3,
        speedup: batch_qps,
    });

    // --- Cache observability: every query above resolved a registered
    // tenant's warm profile, so the counters must show pure hits. ---
    let stats = service.stats();
    assert_eq!(stats.misses, 0, "the e16 mix only queries registered tenants");
    assert_eq!(stats.rebuilds, built as u64, "one build per cold key, no fallbacks");
    table.push(&[
        "cache counters".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!(
            "hits={} misses={} patches={} rebuilds={} evictions={}",
            stats.hits, stats.misses, stats.patches, stats.rebuilds, stats.evictions
        ),
    ]);

    (vec![table], entries)
}

/// E17 — incremental profile repair under dynamic edge events: one
/// [`DynamicColorBound`] tenant on the `e12` conflict graph is cached by
/// the serving tier, then a fixed LCG stream of edge events (delete when
/// the drawn edge exists, insert otherwise) flows through
/// `DynamicColorBound::apply_event` and `ProfileService::patch`, which
/// repairs only the touched lanes of the cached closed form.  The table
/// compares the median per-event repair against the full
/// `CycleProfile::build` each event would otherwise force, reports the
/// service cache counters, and hard-asserts the churned profile is
/// content-identical (hence every derived analysis is bitwise-identical)
/// to rebuild-from-scratch oracles on 1-, 2- and 8-thread pools.
/// Acceptance: median repair >= 25x cheaper than a full build (the
/// `criterion` column).
pub fn e17_incremental_repair_with(cfg: &AnalysisBenchConfig) -> (Vec<Table>, Vec<BenchEntry>) {
    use fhg_core::serving::{PatchOutcome, ProfileService};
    use fhg_graph::{EdgeEvent, EdgeEventKind};

    let graph = generators::erdos_renyi(cfg.nodes, cfg.edge_prob, cfg.seed);
    let mut sched = DynamicColorBound::new(&graph);
    let n = graph.node_count();

    let mut service = ProfileService::new();
    service.register(0, sched.graph(), &sched).expect("the dynamic tenant registers cleanly");
    assert_eq!(service.build_pending(), 1, "exactly one cold profile to build");

    // --- Full-rebuild baseline on the initial graph: what every edge
    // event would cost without the patch plane. ---
    let full_ms = {
        let view = sched.residue_schedule().expect("colour-bound schedules are periodic");
        let checker = GraphChecker::new(sched.graph());
        let mut profile = CycleProfile::build(view, sched.first_holiday(), n, &checker);
        let ms = median_ms(cfg.reps, || {
            profile = CycleProfile::build(view, sched.first_holiday(), n, &checker);
        });
        assert!(profile.all_classes_independent(), "the colour bound keeps gatherings independent");
        ms
    };

    // --- The churn stream: LCG-drawn endpoints; delete when the edge is
    // present, insert otherwise, so the graph hovers around its seeded
    // density while the cached profile is patched event by event. ---
    let mut state = 0x000E_17C0_FFEE_u64 ^ cfg.seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    let events = cfg.churn_events;
    let mut per_event_ns: Vec<u64> = Vec::with_capacity(events);
    let (mut patched, mut fell_back) = (0usize, 0usize);
    for holiday in 0..events as u64 {
        let u = (next() % n as u64) as usize;
        let v = loop {
            let v = (next() % n as u64) as usize;
            if v != u {
                break v;
            }
        };
        let kind = if sched.graph().has_edge(u, v) {
            EdgeEventKind::Delete
        } else {
            EdgeEventKind::Insert
        };
        let repair = sched
            .apply_event(EdgeEvent { kind, u, v, holiday })
            .expect("drawn endpoints are in range and distinct");
        let t = Instant::now();
        let outcome = service.patch(0, &repair).expect("tenant 0 stays registered");
        per_event_ns.push(t.elapsed().as_nanos() as u64);
        match outcome {
            PatchOutcome::Patched(_) => patched += 1,
            PatchOutcome::Rebuilt => fell_back += 1,
            PatchOutcome::Cold => unreachable!("the tenant was built before the stream"),
        }
    }
    per_event_ns.sort_unstable();
    let patch_ms = per_event_ns[per_event_ns.len() / 2] as f64 / 1e6;
    let speedup = full_ms / patch_ms;

    // --- Parity: the served, event-patched profile must be
    // content-identical to a rebuild-from-scratch oracle of the final
    // schedule at every pool width. ---
    let served = service.profile(0).expect("the tenant stays warm through the stream");
    let view = sched.residue_schedule().expect("still perfectly periodic after churn");
    let checker = GraphChecker::new(sched.graph());
    let mut parity_rows = Vec::new();
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let t0 = Instant::now();
        let oracle = pool.install(|| CycleProfile::build(view, sched.first_holiday(), n, &checker));
        let oracle_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            served.content_eq(&oracle),
            "patched profile diverged from the {threads}-thread rebuild oracle"
        );
        parity_rows.push((threads, oracle_ms));
    }

    let stats = service.stats();
    assert_eq!(stats.patches as usize, patched, "every in-place repair is counted");
    assert_eq!(stats.rebuilds as usize, fell_back + 1, "cold build plus every fallback");

    let mut table = Table::new(
        format!(
            "E17 — incremental repair under edge churn on erdos_renyi({}, {}): {events} LCG \
             events, {patched} patched in place / {fell_back} fell back to rebuild (rebuild \
             medians of {})",
            cfg.nodes, cfg.edge_prob, cfg.reps
        ),
        &["path", "threads", "median ms", "vs full rebuild", "criterion"],
    );
    table.push(&[
        "full rebuild (per-event baseline)".into(),
        "1".into(),
        format!("{full_ms:.3}"),
        "1.00x".into(),
        "-".into(),
    ]);
    table.push(&[
        "service patch (in-place repair)".into(),
        "1".into(),
        format!("{patch_ms:.4}"),
        format!("{speedup:.1}x"),
        format!(">=25x vs rebuild: {}", speedup >= 25.0),
    ]);
    for &(threads, oracle_ms) in &parity_rows {
        table.push(&[
            format!("rebuild-from-scratch oracle ({threads} threads)"),
            threads.to_string(),
            format!("{oracle_ms:.3}"),
            "-".into(),
            "content parity with patched profile: true".into(),
        ]);
    }
    table.push(&[
        "cache counters".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!(
            "hits={} misses={} patches={} rebuilds={} evictions={}",
            stats.hits, stats.misses, stats.patches, stats.rebuilds, stats.evictions
        ),
    ]);

    let mut entries = vec![
        BenchEntry {
            experiment: "e17",
            engine: "full-rebuild".into(),
            threads: 1,
            horizon: events as u64,
            median_ms: full_ms,
            speedup: 1.0,
        },
        BenchEntry {
            experiment: "e17",
            engine: "repair-vs-rebuild".into(),
            threads: 1,
            horizon: events as u64,
            median_ms: patch_ms,
            speedup,
        },
    ];
    for (threads, oracle_ms) in parity_rows {
        entries.push(BenchEntry {
            experiment: "e17",
            engine: format!("patch-parity-{threads}t"),
            threads,
            horizon: events as u64,
            median_ms: oracle_ms,
            speedup: full_ms / oracle_ms,
        });
    }
    (vec![table], entries)
}

/// E18 — the crash-only serving tier under measurement: (a) the tax the
/// failpoint instrumentation puts on the `e16` windowed-serving qps path.
/// The acceptance criterion is the *disabled* tax — what the sites cost
/// with `FHG_FAILPOINTS` unset, the state every production run serves in:
/// per-hit cost of the compiled fast path (relaxed atomic loads) measured
/// head-on and expressed as a fraction of the per-query service time,
/// which must stay ≤ 2%.  An interleaved A/B against a registry armed on
/// an *unrelated* site (the worst case for clean code: every instrumented
/// site pays the registry lookup and misses) rides along as an
/// informational row; and (b) the median quarantine → rebuild
/// recovery latency: tenants are quarantined one at a time by an injected
/// `patch.after_rows` panic, the fault is cleared, and
/// [`repair_quarantined`](fhg_core::serving::ProfileService::repair_quarantined)
/// is timed rebuilding the slot cold.  Both land in `BENCH_analysis.json`
/// as the greppable `failpoint-overhead` and `quarantine-recovery` rows.
pub fn e18_crash_only_serving_with(cfg: &AnalysisBenchConfig) -> (Vec<Table>, Vec<BenchEntry>) {
    use fhg_core::failpoint;
    use fhg_core::serving::{PatchError, ProfileService, Query};
    use fhg_graph::{EdgeEvent, EdgeEventKind};

    // The registry is process-global: start from a known-disabled state
    // and hand whatever the environment pinned back at the end.
    failpoint::clear();

    let mut entries = Vec::new();
    let tenants = cfg.serve_tenants;

    // --- Part (a): the e16 serving tier, verbatim — same tenant sizing,
    // same LCG query mix — so the baseline row is directly comparable. ---
    let mut service = ProfileService::new();
    for i in 0..tenants {
        let n = 40 + (i % 17) * 2;
        let graph = generators::erdos_renyi(n, 4.0 / n as f64, 0xE16 ^ i as u64);
        let scheduler = PeriodicDegreeBound::new(&graph);
        service
            .register(i as u64, &graph, &scheduler)
            .expect("periodic tenants must register cleanly");
    }
    let build_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(build_threads).build().unwrap();
    pool.install(|| service.build_pending());
    assert_eq!(service.warm_count(), service.key_count());

    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    let queries: Vec<Query> = (0..cfg.serve_queries)
        .map(|_| {
            let tenant = next() % tenants as u64;
            let t0 = next() % (1 << 16);
            let width = next() % (1 << 12);
            Query { tenant, window: (t0, t0 + width) }
        })
        .collect();

    // The sustained single-core totals path — zero failpoint sites, the
    // exact e16 acceptance loop — anchors the comparison.
    let mut checksum = 0u64;
    let wall = Instant::now();
    for q in &queries {
        let totals = service.query_totals(q.tenant, q.window.0, q.window.1).unwrap();
        checksum = checksum.wrapping_add(totals.total_happiness);
    }
    let totals_qps = queries.len() as f64 / wall.elapsed().as_secs_f64();
    assert!(checksum > 0, "the query mix must touch non-trivial windows");

    // The instrumented path: `query_batch` evaluates the `query.batch`
    // site (plus a `catch_unwind`) once per request.  One worker, so the
    // A/B difference is the failpoint machinery, not pool scheduling.
    let solo = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let run_batch = |service: &ProfileService, queries: &[Query]| -> f64 {
        let wall = Instant::now();
        let mut served = 0usize;
        for slab in queries.chunks(4096) {
            let responses = solo.install(|| service.query_batch(slab));
            served += responses.iter().filter(|r| r.is_ok()).count();
        }
        assert_eq!(served, queries.len(), "every batched query must be answerable");
        queries.len() as f64 / wall.elapsed().as_secs_f64()
    };
    run_batch(&service, &queries); // warm caches before the A/B samples
                                   // A shared host is bursty on scales of tens of milliseconds and up,
                                   // so any estimator that compares whole passes — medians, best-of-N,
                                   // even back-to-back pairs — flaps by several percent run to run,
                                   // swamping a sub-percent effect.  Interleave at slab granularity
                                   // instead: each 4096-query slab is served twice, disabled and armed,
                                   // milliseconds apart (order alternating to cancel bias), and each
                                   // side accumulates its own wall time across every pass.  Noise
                                   // bursts land on both sides almost equally, so the aggregate
                                   // throughput ratio isolates the failpoint machinery itself.
    let mut side_ns = [0u64; 2]; // [disabled, armed]
    let mut side_served = [0u64; 2];
    for pass in 0..2 * cfg.reps.max(1) {
        for (si, slab) in queries.chunks(4096).enumerate() {
            let order = if (pass + si) % 2 == 0 { [false, true] } else { [true, false] };
            for armed in order {
                if armed {
                    failpoint::configure_with_seed("e18.unrelated=err", 0xE18);
                } else {
                    failpoint::clear();
                }
                let wall = Instant::now();
                let responses = solo.install(|| service.query_batch(slab));
                let elapsed = wall.elapsed().as_nanos() as u64;
                let served = responses.iter().filter(|r| r.is_ok()).count();
                assert_eq!(served, slab.len(), "every batched query must be answerable");
                side_ns[armed as usize] += elapsed;
                side_served[armed as usize] += slab.len() as u64;
            }
        }
    }
    failpoint::clear();
    let disabled_qps = side_served[0] as f64 / (side_ns[0] as f64 / 1e9);
    let armed_qps = side_served[1] as f64 / (side_ns[1] as f64 / 1e9);
    let ratio = armed_qps / disabled_qps;
    let armed_pct = (1.0 - ratio) * 100.0;

    // The acceptance criterion is the *disabled* tax — what the
    // instrumentation costs the PR 7 qps path when `FHG_FAILPOINTS` is
    // unset, which is the state every production run serves in.  The
    // disabled site is two relaxed atomic loads; measure it head-on with
    // a tight loop (stable even on a noisy host — the per-hit cost is
    // nanoseconds against a microsecond query) and express it as a
    // fraction of the measured per-query service time.  `query_batch`
    // evaluates exactly one site per request.
    let per_hit_ns = {
        let hits = 20_000_000u64;
        let mut live = 0u64;
        let wall = Instant::now();
        for _ in 0..hits {
            live += failpoint::check(std::hint::black_box("query.batch")).is_some() as u64;
        }
        let ns = wall.elapsed().as_nanos() as f64 / hits as f64;
        assert_eq!(live, 0, "the disabled registry must never fire");
        ns
    };
    let per_query_ns = 1e9 / disabled_qps;
    let disabled_pct = per_hit_ns / per_query_ns * 100.0;

    let mut table = Table::new(
        format!(
            "E18 — crash-only serving: failpoint tax on the e16 qps path ({tenants} tenants, {} \
             LCG queries, {} slab-interleaved A/B passes) and quarantine → rebuild recovery",
            cfg.serve_queries,
            2 * cfg.reps.max(1)
        ),
        &["path", "threads", "median", "vs disabled", "criterion"],
    );
    table.push(&[
        "query_totals (e16 acceptance path, no sites)".into(),
        "1".into(),
        format!("{totals_qps:.0} q/s"),
        "-".into(),
        "- (baseline anchor)".into(),
    ]);
    table.push(&[
        "query_batch, failpoints disabled".into(),
        "1".into(),
        format!("{disabled_qps:.0} q/s"),
        "1.000x".into(),
        "-".into(),
    ]);
    table.push(&[
        "query_batch, armed on an unrelated site".into(),
        "1".into(),
        format!("{armed_qps:.0} q/s"),
        format!("{ratio:.3}x interleaved"),
        format!("armed tax {armed_pct:.2}% (registry lookup/query, informational)"),
    ]);
    table.push(&[
        "fail_point! check, disabled (per site hit)".into(),
        "1".into(),
        format!("{per_hit_ns:.1} ns"),
        format!("{disabled_pct:.4}% of a query"),
        format!("disabled tax <= 2%: {}", disabled_pct <= 2.0),
    ]);
    entries.push(BenchEntry {
        experiment: "e18",
        engine: "serving-baseline-qps".into(),
        threads: 1,
        horizon: queries.len() as u64,
        median_ms: 0.0,
        speedup: totals_qps,
    });
    entries.push(BenchEntry {
        experiment: "e18",
        engine: "failpoint-disabled-qps".into(),
        threads: 1,
        horizon: queries.len() as u64,
        median_ms: 0.0,
        speedup: disabled_qps,
    });
    entries.push(BenchEntry {
        experiment: "e18",
        // median_ms carries the disabled-site tax (% of a query, the
        // acceptance number); speedup carries the armed/disabled
        // interleaved qps ratio (informational).
        engine: "failpoint-overhead".into(),
        threads: 1,
        horizon: queries.len() as u64,
        median_ms: disabled_pct,
        speedup: ratio,
    });

    // --- Part (b): quarantine → rebuild recovery.  One dynamic tenant at
    // a time is killed past its commit point by an injected panic, the
    // fault is cleared, and the cold repair is timed. ---
    let samples = cfg.churn_events.clamp(8, 64);
    let mut dyn_service = ProfileService::new();
    let mut dyn_scheds: Vec<DynamicColorBound> = (0..samples)
        .map(|i| {
            let n = 48 + (i % 7) * 4;
            let graph = generators::erdos_renyi(n, 4.0 / n as f64, 0xE18 ^ i as u64);
            let sched = DynamicColorBound::new(&graph);
            dyn_service
                .register(i as u64, &graph, &sched)
                .expect("dynamic tenants must register cleanly");
            sched
        })
        .collect();
    pool.install(|| dyn_service.build_pending());

    // The injected panics below are all caught by the service's
    // `catch_unwind`; silence the default hook so they don't spray 64
    // backtraces over the report, and restore it afterwards.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut recovery_ns: Vec<u64> = Vec::with_capacity(samples);
    for (i, sched) in dyn_scheds.iter_mut().enumerate() {
        failpoint::configure_with_seed("patch.after_rows=panic", 0xE18 + i as u64);
        let n = sched.node_count();
        let (u, v) = (i % n, (i + 1 + i % (n - 1)) % n);
        let (u, v) = if u == v { (u, (v + 1) % n) } else { (u, v) };
        let kind = if sched.graph().has_edge(u, v) {
            EdgeEventKind::Delete
        } else {
            EdgeEventKind::Insert
        };
        let repair = sched
            .apply_event(EdgeEvent { kind, u, v, holiday: i as u64 })
            .expect("drawn endpoints are in range and distinct");
        let err = dyn_service.patch(i as u64, &repair);
        assert!(
            matches!(err, Err(PatchError::Quarantined(_))),
            "the injected commit-point panic must quarantine, got {err:?}"
        );
        failpoint::clear();
        let t = Instant::now();
        assert_eq!(dyn_service.repair_quarantined(), 1, "exactly one slot to repair");
        recovery_ns.push(t.elapsed().as_nanos() as u64);
    }
    std::panic::set_hook(hook);
    recovery_ns.sort_unstable();
    let recovery_ms = recovery_ns[recovery_ns.len() / 2] as f64 / 1e6;
    assert_eq!(dyn_service.quarantined_count(), 0, "every quarantined tenant recovered");
    assert_eq!(dyn_service.stats().quarantines as usize, samples);

    table.push(&[
        format!("quarantine -> rebuild recovery ({samples} tenants)"),
        "1".into(),
        format!("{recovery_ms:.4} ms"),
        "-".into(),
        "every quarantined tenant rebuilt warm: true".into(),
    ]);
    entries.push(BenchEntry {
        experiment: "e18",
        engine: "quarantine-recovery".into(),
        threads: 1,
        horizon: samples as u64,
        median_ms: recovery_ms,
        speedup: 1.0,
    });

    // Hand the registry back to whatever the environment pinned.
    failpoint::reset_to_env();
    (vec![table], entries)
}

/// E19 — durable serving (PR 10 acceptance): the checksummed snapshot
/// format is at least 3x denser than a naive `Vec<u64>` dump, a
/// 1024-tenant snapshot + recover round trip completes with every
/// uncorrupted slot **rehydrated** (never cold-built), and WAL replay
/// through the patch plane sustains a measured frames/s rate.
///
/// The experiment runs under whatever fault schedule `FHG_FAILPOINTS`
/// pins (the CI recovery-smoke step injects `wal.append` /
/// `recover.replay` faults): refused appends follow the
/// do-not-apply-on-`Err` protocol, faulted replays must land typed
/// quarantines, and the bitwise-convergence assertions are checked on
/// the fault-free configuration only.
pub fn e19_durable_recovery_with(cfg: &AnalysisBenchConfig) -> (Vec<Table>, Vec<BenchEntry>) {
    use fhg_core::failpoint;
    use fhg_core::serving::{ProfileService, WalSync, WalWriter};
    use fhg_graph::{EdgeEvent, EdgeEventKind};

    // Run under the environment's fault schedule (the smoke step pins
    // one); `chaos` below gates the fault-free-only assertions.
    failpoint::reset_to_env();
    let chaos = failpoint::active();

    let mut entries = Vec::new();
    let static_tenants = cfg.serve_tenants;
    const DYNAMIC_TENANTS: usize = 8;
    let total_tenants = static_tenants + DYNAMIC_TENANTS;

    // The e16 tenant population plus a dynamic cohort for WAL churn.
    // `naive_words` accumulates the baseline encoding: one u64 per scalar
    // — start, node counts, every (slot, modulus) pair, every adjacency
    // entry (both directions, as an adjacency list dump would store them),
    // degrees, and the verdict — per tenant, no sharing, no bit packing.
    let mut service = ProfileService::new();
    let mut naive_words: u64 = 0;
    let mut naive_of = |graph: &Graph, view_nodes: usize| {
        naive_words += 2 + 2 * view_nodes as u64 + 1; // start, n, (slot, modulus)*, verdict
        naive_words += 1; // graph node count
        for u in graph.nodes() {
            naive_words += 1 + graph.degree(u) as u64; // degree + neighbor list
        }
    };
    for i in 0..static_tenants {
        let n = 40 + (i % 17) * 2;
        let graph = generators::erdos_renyi(n, 4.0 / n as f64, 0xE16 ^ i as u64);
        let scheduler = PeriodicDegreeBound::new(&graph);
        service
            .register(i as u64, &graph, &scheduler)
            .expect("periodic tenants must register cleanly");
        naive_of(&graph, scheduler.residue_schedule().expect("periodic").node_count());
    }
    let mut dyn_scheds: Vec<DynamicColorBound> = (0..DYNAMIC_TENANTS)
        .map(|i| {
            let n = 48 + (i % 7) * 4;
            let graph = generators::erdos_renyi(n, 4.0 / n as f64, 0xE19 ^ i as u64);
            let sched = DynamicColorBound::new(&graph);
            service
                .register((static_tenants + i) as u64, &graph, &sched)
                .expect("dynamic tenants must register cleanly");
            naive_of(&graph, sched.node_count());
            sched
        })
        .collect();
    let build_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(build_threads).build().unwrap();
    let initial_builds = pool.install(|| service.build_pending()) as u64;
    assert_eq!(service.warm_count(), service.key_count());

    // --- Snapshot density: the PR 10 acceptance criterion. ---
    let snapshot_bytes = service.snapshot_bytes().len() as u64;
    let naive_bytes = naive_words * 8;
    let bytes_per_tenant = snapshot_bytes as f64 / total_tenants as f64;
    let naive_per_tenant = naive_bytes as f64 / total_tenants as f64;
    let density = naive_bytes as f64 / snapshot_bytes as f64;
    assert!(
        snapshot_bytes * 3 <= naive_bytes,
        "snapshot encoding must be at least 3x denser than the naive Vec<u64> dump \
         ({snapshot_bytes} vs {naive_bytes} bytes)"
    );

    let dir = std::env::temp_dir().join(format!("fhg-e19-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Snapshot wall time (atomic temp+rename+fsync included). ---
    let mut snap_ns: Vec<u64> = Vec::new();
    for _ in 0..cfg.reps.max(1) {
        let t = Instant::now();
        match service.snapshot(&dir) {
            Ok(stats) => {
                assert_eq!(stats.bytes, snapshot_bytes);
                snap_ns.push(t.elapsed().as_nanos() as u64);
            }
            Err(e) => {
                assert!(chaos, "snapshot failed without an armed fault schedule: {e}");
            }
        }
    }
    while snap_ns.is_empty() {
        // Every timed attempt died to injected faults: keep (unmeasured)
        // retries until one snapshot lands so the recovery half can run.
        if let Ok(stats) = service.snapshot(&dir) {
            assert_eq!(stats.bytes, snapshot_bytes);
            snap_ns.push(0);
        }
    }
    snap_ns.sort_unstable();
    let snap_ms = snap_ns[snap_ns.len() / 2] as f64 / 1e6;

    // --- WAL churn: toggle one initially-absent edge per dynamic tenant.
    // A refused append (injected `wal.append` fault) follows the
    // protocol: the event is NOT applied to the live service, and that
    // tenant's stream stops so log and service content stay in step. ---
    let mut wal = WalWriter::with_sync(&dir, WalSync::Always).expect("the WAL opens");
    let toggles: Vec<(usize, usize)> = dyn_scheds
        .iter()
        .map(|sched| {
            let g = sched.graph();
            let n = g.node_count();
            (0..n)
                .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
                .find(|&(a, b)| !g.has_edge(a, b))
                .expect("a sparse graph has absent edges")
        })
        .collect();
    let mut dirty = [false; DYNAMIC_TENANTS];
    let mut appended = 0u64;
    let churn = cfg.churn_events.max(DYNAMIC_TENANTS);
    let wal_wall = Instant::now();
    for step in 0..churn {
        let d = step % DYNAMIC_TENANTS;
        if dirty[d] {
            continue;
        }
        let tenant = (static_tenants + d) as u64;
        let (u, v) = toggles[d];
        let kind = if dyn_scheds[d].graph().has_edge(u, v) {
            EdgeEventKind::Delete
        } else {
            EdgeEventKind::Insert
        };
        let repair = dyn_scheds[d]
            .apply_event(EdgeEvent { kind, u, v, holiday: step as u64 })
            .expect("toggling an absent edge is always valid");
        match wal.append(tenant, &repair) {
            Ok(()) => {
                appended += 1;
                service.patch(tenant, &repair).expect("fault-free toggles patch cleanly");
            }
            Err(e) => {
                assert!(chaos, "append failed without an armed fault schedule: {e}");
                dirty[d] = true; // protocol: not applied, stream stops
            }
        }
    }
    let wal_append_ms = wal_wall.elapsed().as_secs_f64() * 1e3;
    drop(wal);
    let live_stats = service.stats();

    // --- Recover: snapshot load + rehydration + WAL replay + audit. ---
    let mut recover_ns: Vec<u64> = Vec::new();
    let mut last = None;
    for _ in 0..cfg.reps.max(1) {
        let t = Instant::now();
        let (recovered, report) =
            ProfileService::recover(&dir).expect("an intact snapshot always recovers");
        recover_ns.push(t.elapsed().as_nanos() as u64);
        last = Some((recovered, report));
    }
    recover_ns.sort_unstable();
    let recover_ms = recover_ns[recover_ns.len() / 2] as f64 / 1e6;
    let (recovered, report) = last.expect("at least one recovery ran");

    // The recovery ledger: every slot the snapshot held was rehydrated —
    // `CycleProfile::build` never ran for an uncorrupted slot — and the
    // only rebuilds are the ones the replayed patches themselves chose
    // (`build_pending` counts into `rebuilds`, so live = initial builds
    // plus churn rebuilds while recovery pays only the churn share).
    assert_eq!(report.slots_loaded, service.key_count());
    assert_eq!(report.tenants_restored, total_tenants);
    assert_eq!(report.profiles_rehydrated, service.key_count(), "every warm slot rehydrates");
    assert!(!report.snapshot_torn && !report.wal_torn, "the writer was never killed mid-file");
    let replay_rate =
        if recover_ms > 0.0 { report.wal_frames_replayed as f64 / (recover_ms / 1e3) } else { 0.0 };
    if !chaos {
        assert_eq!(appended, churn as u64, "no injected faults: every append lands");
        assert_eq!(report.wal_frames_replayed as u64, appended);
        assert_eq!(report.quarantined, 0);
        let rec_stats = recovered.stats();
        assert_eq!(
            rec_stats.rebuilds,
            live_stats.rebuilds - initial_builds,
            "recovery must add no cold build beyond what live churn chose"
        );
        assert_eq!(rec_stats.patches, live_stats.patches);
        for t in 0..total_tenants as u64 {
            let live = service.profile(t).expect("live tenant is warm");
            let rec = recovered.profile(t).expect("recovered tenant is warm");
            assert!(rec.content_eq(live), "tenant {t} must recover bitwise-equal");
            let cycle = live.cycle();
            assert_eq!(
                service.query_totals(t, 1, 2 * cycle + 3).expect("live answers"),
                recovered.query_totals(t, 1, 2 * cycle + 3).expect("recovered answers"),
                "tenant {t}: windowed answers must be bitwise-stable across recovery"
            );
        }
    } else {
        // Under injected faults the contract is the typed degraded path:
        // every tenant is warm or quarantined, never silently wrong.
        for t in 0..total_tenants as u64 {
            assert!(
                recovered.profile(t).is_some() || recovered.quarantine_reason(t).is_some(),
                "tenant {t}: must recover warm or typed-quarantined under chaos"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut table = Table::new(
        format!(
            "E19 — durable serving: snapshot density, {total_tenants}-tenant snapshot + recover \
             wall time, and WAL replay rate ({appended} frames{})",
            if chaos { ", under the environment-pinned fault schedule" } else { "" }
        ),
        &["path", "threads", "median", "vs naive", "criterion"],
    );
    table.push(&[
        "snapshot bytes/tenant (sections + FNV checksums)".into(),
        "1".into(),
        format!("{bytes_per_tenant:.1} B"),
        format!("{density:.2}x denser than {naive_per_tenant:.0} B naive"),
        format!("<= 1/3 of naive Vec<u64>: {}", snapshot_bytes * 3 <= naive_bytes),
    ]);
    table.push(&[
        format!("snapshot write ({} slots, atomic rename + fsync)", service.key_count()),
        "1".into(),
        format!("{snap_ms:.3} ms"),
        "-".into(),
        "-".into(),
    ]);
    table.push(&[
        format!(
            "recover ({} slots rehydrated, {} frames replayed, audit sample)",
            report.profiles_rehydrated, report.wal_frames_replayed
        ),
        "1".into(),
        format!("{recover_ms:.3} ms"),
        "-".into(),
        format!(
            "zero cold builds for uncorrupted slots: {}",
            report.profiles_rehydrated == service.key_count()
        ),
    ]);
    table.push(&[
        format!("WAL append ({appended} frames, sync=always)"),
        "1".into(),
        format!("{wal_append_ms:.3} ms"),
        "-".into(),
        "-".into(),
    ]);
    entries.push(BenchEntry {
        experiment: "e19",
        // median_ms carries bytes/tenant; speedup the density ratio vs
        // the naive Vec<u64> dump (acceptance: >= 3).
        engine: "snapshot-bytes-per-tenant".into(),
        threads: 1,
        horizon: total_tenants as u64,
        median_ms: bytes_per_tenant,
        speedup: density,
    });
    entries.push(BenchEntry {
        experiment: "e19",
        engine: "snapshot-wall".into(),
        threads: 1,
        horizon: total_tenants as u64,
        median_ms: snap_ms,
        speedup: 1.0,
    });
    entries.push(BenchEntry {
        experiment: "e19",
        engine: "recover-wall".into(),
        threads: 1,
        horizon: total_tenants as u64,
        median_ms: recover_ms,
        speedup: 1.0,
    });
    entries.push(BenchEntry {
        experiment: "e19",
        // median_ms carries the replayed frame count; speedup the
        // frames/s replay rate through the patch plane.
        engine: "wal-replay-rate".into(),
        threads: 1,
        horizon: appended,
        median_ms: report.wal_frames_replayed as f64,
        speedup: replay_rate,
    });

    failpoint::reset_to_env();
    (vec![table], entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny configuration for structural tests (no perf assertions).
    fn tiny_cfg() -> AnalysisBenchConfig {
        AnalysisBenchConfig {
            nodes: 120,
            edge_prob: 0.05,
            seed: 7,
            horizon: 128,
            long_horizon: 4096,
            build_nodes: 64,
            build_moduli: (8, 27),
            reps: 1,
            serve_tenants: 12,
            serve_queries: 512,
            churn_events: 32,
        }
    }

    /// `e18` arms the process-global failpoint registry; any test that
    /// drives `ProfileService::patch` (which `e17` does) must not overlap
    /// with it, so both serialize here.
    static FAILPOINT_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn experiment_ids_are_wired_up() {
        assert_eq!(EXPERIMENT_IDS.len(), 19);
    }

    #[test]
    fn e16_reports_throughput_and_tail_latency_rows() {
        let (tables, entries) = run_experiment_collecting("e16", &tiny_cfg());
        assert_eq!(tables.len(), 1);
        let md = tables[0].to_markdown();
        assert!(md.contains("query_totals"), "{md}");
        assert!(md.contains("query_batch"), "{md}");
        assert!(md.contains("cache counters"), "{md}");
        assert!(md.contains("hits="), "{md}");
        for engine in
            ["profile-build", "windowed-totals-qps", "windowed-totals-p99", "windowed-batch-qps"]
        {
            assert!(entries.iter().any(|e| e.engine == engine), "missing {engine} row");
        }
        let qps = entries.iter().find(|e| e.engine == "windowed-totals-qps").unwrap();
        assert!(qps.speedup > 0.0, "qps rides the speedup field");
        let json = bench_entries_to_json(true, &entries);
        assert!(json.contains("windowed-totals-p99"));
    }

    #[test]
    fn e11_and_e12_report_entries_and_json() {
        let cfg = tiny_cfg();
        let (tables, entries) = run_experiment_collecting("e11", &cfg);
        assert_eq!(tables.len(), 1);
        assert!(entries.len() >= 3, "reference, sweep and closed-form rows");
        assert!(entries.iter().any(|e| e.engine.contains("closed-form")));
        assert!((entries[0].speedup - 1.0).abs() < 1e-9, "baseline speedup is 1");

        let (tables, entries) = run_experiment_collecting("e12", &cfg);
        assert_eq!(tables.len(), 1);
        assert_eq!(entries.len(), 5, "sweep, 2x closed form, AoS + SoA derive rows");
        let md = tables[0].to_markdown();
        assert!(md.contains("closed-form cycle profile"));
        assert!(md.contains("derive only (AoS baseline)"));
        assert!(md.contains("derive only (SoA kernels)"));
        assert!(!md.contains("| false |"), "every engine must match the reference: {md}");

        let json = bench_entries_to_json(true, &entries);
        assert!(json.contains("\"schema\": \"fhg-bench-analysis/1\""));
        assert!(json.contains("\"smoke\": true"));
        assert_eq!(json.matches("\"experiment\": \"e12\"").count(), 5);
        assert!(!json.contains(",\n  ]"), "no trailing comma before the array close");
    }

    #[test]
    fn e14_reports_derive_and_build_rows_with_parity() {
        let cfg = tiny_cfg();
        // The parity cross-checks (SoA vs AoS derive, totals vs reduced
        // full derive, thread-count build parity) assert inside e14.
        let (tables, entries) = run_experiment_collecting("e14", &cfg);
        assert_eq!(tables.len(), 2, "derivation table plus the parallel-build table");
        let derive_md = tables[0].to_markdown();
        assert!(derive_md.contains("derive (AoS baseline)"));
        assert!(derive_md.contains("derive (SoA fused)"));
        assert!(derive_md.contains("totals-only"));
        let build_md = tables[1].to_markdown();
        assert!(build_md.contains("profile build (sharded classes)"));
        assert_eq!(
            entries.iter().filter(|e| e.engine == "profile-build-sharded").count(),
            3,
            "1/2/8-thread build rows"
        );
        assert!(entries.iter().all(|e| e.experiment == "e14"));
        let json = bench_entries_to_json(true, &entries);
        assert_eq!(json.matches("\"experiment\": \"e14\"").count(), entries.len());
    }

    #[test]
    fn e15_reports_batched_rows_on_every_layout() {
        // Tiny configuration: structure + the internal parity asserts
        // (batched == per-class verdicts, blocked/CSR agreement), no perf
        // criteria evaluated at this size beyond being printed.
        let cfg = tiny_cfg();
        let (tables, entries) = run_experiment_collecting("e15", &cfg);
        assert_eq!(tables.len(), 3, "batch table, kernel table, dense-scale table");
        let batch_md = tables[0].to_markdown();
        assert!(batch_md.contains("per-class"));
        assert!(batch_md.contains("batched"));
        assert!(entries.iter().all(|e| e.experiment == "e15"));
        assert!(entries.iter().any(|e| e.engine.contains("flat")));
        assert!(entries.iter().any(|e| e.engine.contains("blocked")));
        assert!(entries.iter().any(|e| e.engine.contains("intersects-many-portable")));
        assert!(entries.iter().any(|e| e.engine.contains("closed-form-end-to-end-batched")));
        let json = bench_entries_to_json(true, &entries);
        assert_eq!(json.matches("\"experiment\": \"e15\"").count(), entries.len());
    }

    #[test]
    fn e13_reports_all_paths_and_agreeing_checksums() {
        // Tiny configuration: structure + kernel-level parity (the checksum
        // asserts inside e13), no perf assertions.
        let cfg = AnalysisBenchConfig {
            nodes: 150,
            edge_prob: 0.04,
            seed: 11,
            horizon: 96,
            long_horizon: 1024,
            build_nodes: 48,
            build_moduli: (4, 9),
            reps: 1,
            serve_tenants: 8,
            serve_queries: 128,
            churn_events: 32,
        };
        let (tables, entries) = run_experiment_collecting("e13", &cfg);
        assert_eq!(tables.len(), 2, "timing table plus the parity witness");
        assert_eq!(entries.len(), 4, "scalar, portable, dispatched, end-to-end");
        assert!((entries[0].speedup - 1.0).abs() < 1e-9, "scalar baseline speedup is 1");
        assert!(entries.iter().any(|e| e.engine.contains("fused-gather+popcount")));
        let parity = tables[1].to_markdown();
        assert!(!parity.contains("| false |"), "every engine must match the reference: {parity}");
    }

    #[test]
    fn e17_reports_repair_and_parity_rows() {
        // Tiny configuration: the per-event patches, the fallback path and
        // the 1/2/8-thread rebuild-oracle parity all assert inside e17; the
        // >=25x criterion is printed, not evaluated, at this size.
        let _guard = FAILPOINT_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let (tables, entries) = run_experiment_collecting("e17", &tiny_cfg());
        assert_eq!(tables.len(), 1);
        let md = tables[0].to_markdown();
        assert!(md.contains("service patch"), "{md}");
        assert!(md.contains("rebuild-from-scratch oracle"), "{md}");
        assert!(md.contains("cache counters"), "{md}");
        for engine in [
            "full-rebuild",
            "repair-vs-rebuild",
            "patch-parity-1t",
            "patch-parity-2t",
            "patch-parity-8t",
        ] {
            assert!(entries.iter().any(|e| e.engine == engine), "missing {engine} row");
        }
        let repair = entries.iter().find(|e| e.engine == "repair-vs-rebuild").unwrap();
        assert!(repair.speedup > 0.0, "the repair row carries the speedup ratio");
        let json = bench_entries_to_json(true, &entries);
        assert!(json.contains("repair-vs-rebuild"));
        assert!(json.contains("patch-parity-8t"));
    }

    #[test]
    fn e18_reports_overhead_and_recovery_rows() {
        let _guard = FAILPOINT_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let (tables, entries) = run_experiment_collecting("e18", &tiny_cfg());
        assert_eq!(tables.len(), 1);
        let md = tables[0].to_markdown();
        assert!(md.contains("failpoints disabled"), "{md}");
        assert!(md.contains("armed on an unrelated site"), "{md}");
        assert!(md.contains("disabled tax <= 2%: true"), "{md}");
        assert!(md.contains("quarantine -> rebuild recovery"), "{md}");
        for engine in [
            "serving-baseline-qps",
            "failpoint-disabled-qps",
            "failpoint-overhead",
            "quarantine-recovery",
        ] {
            assert!(entries.iter().any(|e| e.engine == engine), "missing {engine} row");
        }
        let recovery = entries.iter().find(|e| e.engine == "quarantine-recovery").unwrap();
        assert!(recovery.median_ms > 0.0, "a cold rebuild takes measurable time");
        let json = bench_entries_to_json(true, &entries);
        assert!(json.contains("failpoint-overhead"));
        assert!(json.contains("quarantine-recovery"));
        assert!(!fhg_core::failpoint::active(), "e18 must leave the registry as it found it");
    }

    #[test]
    fn e19_reports_density_and_recovery_rows() {
        let _guard = FAILPOINT_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let (tables, entries) = run_experiment_collecting("e19", &tiny_cfg());
        assert_eq!(tables.len(), 1);
        let md = tables[0].to_markdown();
        assert!(md.contains("snapshot bytes/tenant"), "{md}");
        assert!(md.contains("<= 1/3 of naive Vec<u64>: true"), "{md}");
        assert!(md.contains("frames replayed"), "{md}");
        assert!(md.contains("zero cold builds for uncorrupted slots: true"), "{md}");
        for engine in
            ["snapshot-bytes-per-tenant", "snapshot-wall", "recover-wall", "wal-replay-rate"]
        {
            assert!(entries.iter().any(|e| e.engine == engine), "missing {engine} row");
        }
        let density = entries.iter().find(|e| e.engine == "snapshot-bytes-per-tenant").unwrap();
        assert!(density.speedup >= 3.0, "the density ratio rides the speedup field");
        let replay = entries.iter().find(|e| e.engine == "wal-replay-rate").unwrap();
        assert!(replay.speedup > 0.0, "frames/s rides the speedup field");
        let json = bench_entries_to_json(true, &entries);
        assert!(json.contains("snapshot-bytes-per-tenant"));
        assert!(json.contains("recover-wall"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run_experiment("e99");
    }

    #[test]
    fn e3_table_shows_the_expected_feasibility_split() {
        let tables = e3_lower_bound();
        assert_eq!(tables.len(), 1);
        let md = tables[0].to_markdown();
        assert!(md.contains("linear"));
        assert!(md.contains("Elias omega"));
        assert_eq!(tables[0].row_count(), 4);
    }

    #[test]
    fn e4_ablation_reports_zero_conflicts_for_the_paper_order() {
        let tables = e4_periodic_degree_bound();
        let md = tables[1].to_markdown();
        let paper_row: Vec<&str> =
            md.lines().find(|l| l.contains("decreasing degree")).unwrap().split('|').collect();
        assert!(
            paper_row[2].trim().parse::<u64>().unwrap() == 0,
            "paper order must be conflict-free"
        );
        assert!(paper_row[3].trim().parse::<u64>().unwrap() == 0, "paper order must never fail");
    }

    #[test]
    fn e2_analytic_table_never_exceeds_the_bound() {
        let tables = e2_elias_omega_periods();
        let md = tables[0].to_markdown();
        for line in
            md.lines().filter(|l| l.starts_with('|') && !l.contains("colour") && !l.contains("---"))
        {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() >= 6 && !cells[5].is_empty() {
                if let Ok(ratio) = cells[5].parse::<f64>() {
                    assert!(ratio <= 1.0 + 1e-9, "period exceeded the Theorem 4.2 bound: {line}");
                }
            }
        }
    }
}
