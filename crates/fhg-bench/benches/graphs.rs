//! Criterion benchmarks for the graph substrate: generators, CSR conversion
//! and the structural properties the schedulers lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fhg_graph::generators;
use fhg_graph::{properties, CsrGraph};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    for &n in &[10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("erdos-renyi-deg8", n), &n, |b, &n| {
            b.iter(|| black_box(generators::erdos_renyi(n, 8.0 / (n as f64 - 1.0), 1)))
        });
        group.bench_with_input(BenchmarkId::new("unit-disk-deg8", n), &n, |b, &n| {
            let r = (8.0 / ((n as f64 - 1.0) * std::f64::consts::PI)).sqrt();
            b.iter(|| black_box(generators::random_geometric(n, r, 1)))
        });
        group.bench_with_input(BenchmarkId::new("barabasi-albert-m4", n), &n, |b, &n| {
            b.iter(|| black_box(generators::barabasi_albert(n, 4, 1)))
        });
    }
    group.finish();
}

fn bench_properties(c: &mut Criterion) {
    let graph = generators::erdos_renyi(50_000, 10.0 / 49_999.0, 2);
    let mut group = c.benchmark_group("properties");
    group.sample_size(20);
    group.bench_function("csr-conversion-50k", |b| {
        b.iter(|| black_box(CsrGraph::from_graph(&graph)))
    });
    group.bench_function("connected-components-50k", |b| {
        b.iter(|| black_box(properties::connected_components(&graph)))
    });
    group.bench_function("degeneracy-ordering-50k", |b| {
        b.iter(|| black_box(properties::degeneracy_ordering(&graph)))
    });
    group.bench_function("triangle-count-50k", |b| {
        b.iter(|| black_box(properties::triangle_count(&graph)))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_properties);
criterion_main!(benches);
