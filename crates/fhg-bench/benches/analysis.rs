//! Criterion benchmark for the `analyze_schedule` pipeline: the sequential
//! per-holiday-verified reference (the PR 1 engine, ~89 ms on this
//! configuration) against the sharded, residue-cached engine at one thread
//! and at the ambient thread count (`FHG_THREADS`).
//!
//! Configuration matches the `happy-set-engine` bench and the acceptance
//! criterion: `erdos_renyi(10_000, 0.001)`, 4096 holidays,
//! `PeriodicDegreeBound` — checker-bound under the reference engine, since a
//! perfectly periodic schedule has only `2^maxexp` distinct happy sets yet
//! the reference probes independence on all 4096.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fhg_core::analysis::{analyze_schedule, analyze_schedule_reference};
use fhg_core::prelude::*;
use fhg_graph::generators;
use rayon::ThreadPoolBuilder;

fn bench_analysis_engine(c: &mut Criterion) {
    let graph = generators::erdos_renyi(10_000, 0.001, 42);
    const HORIZON: u64 = 4096;
    let mut group = c.benchmark_group("analysis-engine-10k-4096");
    group.sample_size(10);

    group.bench_function("reference-per-holiday-verify", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let analysis = analyze_schedule_reference(&graph, &mut s, HORIZON);
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.bench_function("sharded-cached/1-thread", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        b.iter(|| {
            let analysis = pool.install(|| analyze_schedule(&graph, &mut s, HORIZON));
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.bench_function("sharded-cached/ambient-threads", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let analysis = analyze_schedule(&graph, &mut s, HORIZON);
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_analysis_engine);
criterion_main!(benches);
