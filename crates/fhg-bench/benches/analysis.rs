//! Criterion benchmark for the `analyze_schedule` pipeline: the sequential
//! per-holiday-verified reference (the PR 1 engine, ~100 ms on this
//! configuration) against the sharded, residue-cached sweep (forced — the
//! PR 2 engine, at one thread and at the ambient `FHG_THREADS` count) and
//! the production path (which now selects the closed-form cycle profile for
//! this horizon; see `benches/profile.rs` for its detailed breakdown).
//!
//! Configuration matches the `happy-set-engine` bench and the acceptance
//! criteria: `erdos_renyi(10_000, 0.001)`, 4096 holidays,
//! `PeriodicDegreeBound` — checker-bound under the reference engine, since a
//! perfectly periodic schedule has only `2^maxexp` distinct happy sets yet
//! the reference probes independence on all 4096.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fhg_core::analysis::{
    analyze_schedule, analyze_schedule_reference, analyze_schedule_with_engine, AnalysisEngine,
    GraphChecker,
};
use fhg_core::prelude::*;
use fhg_graph::generators;
use rayon::ThreadPoolBuilder;

fn bench_analysis_engine(c: &mut Criterion) {
    let graph = generators::erdos_renyi(10_000, 0.001, 42);
    const HORIZON: u64 = 4096;
    let checker = GraphChecker::new(&graph);
    let mut group = c.benchmark_group("analysis-engine-10k-4096");
    group.sample_size(10);

    group.bench_function("reference-per-holiday-verify", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let analysis = analyze_schedule_reference(&graph, &mut s, HORIZON);
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.bench_function("sharded-sweep-forced/1-thread", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        b.iter(|| {
            let analysis = pool.install(|| {
                analyze_schedule_with_engine(
                    &graph,
                    &mut s,
                    HORIZON,
                    &checker,
                    AnalysisEngine::ShardedSweep,
                )
            });
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.bench_function("sharded-sweep-forced/ambient-threads", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let analysis = analyze_schedule_with_engine(
                &graph,
                &mut s,
                HORIZON,
                &checker,
                AnalysisEngine::ShardedSweep,
            );
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.bench_function("production-auto-select", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        assert_eq!(AnalysisEngine::select(&s, HORIZON), AnalysisEngine::ClosedForm);
        b.iter(|| {
            let analysis = analyze_schedule(&graph, &mut s, HORIZON);
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_analysis_engine);
criterion_main!(benches);
