//! Criterion benchmarks for the schedulers: construction cost and per-holiday
//! cost of every algorithm in the paper, plus the full-analysis pipeline used
//! by experiments E1/E4/E6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fhg_core::analysis::analyze_schedule;
use fhg_core::prelude::*;
use fhg_graph::generators;
use fhg_graph::Graph;

fn test_graph(n: usize) -> Graph {
    generators::erdos_renyi(n, 8.0 / (n as f64 - 1.0), 42)
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler-construction");
    for &n in &[1_000usize, 10_000] {
        let graph = test_graph(n);
        group.bench_with_input(BenchmarkId::new("phased-greedy", n), &graph, |b, g| {
            b.iter(|| black_box(PhasedGreedy::new(g)))
        });
        group.bench_with_input(BenchmarkId::new("prefix-code-omega", n), &graph, |b, g| {
            b.iter(|| black_box(PrefixCodeScheduler::omega(g)))
        });
        group.bench_with_input(BenchmarkId::new("periodic-degree-bound", n), &graph, |b, g| {
            b.iter(|| black_box(PeriodicDegreeBound::new(g)))
        });
        group.bench_with_input(BenchmarkId::new("distributed-degree-bound", n), &graph, |b, g| {
            b.iter(|| black_box(DistributedDegreeBound::new(g, 7)))
        });
    }
    group.finish();
}

fn bench_per_holiday(c: &mut Criterion) {
    let graph = test_graph(10_000);
    let mut group = c.benchmark_group("per-holiday");
    group.bench_function("phased-greedy", |b| {
        let mut s = PhasedGreedy::new(&graph);
        let mut t = 1u64;
        b.iter(|| {
            let happy = s.happy_set(t);
            t += 1;
            black_box(happy)
        })
    });
    group.bench_function("prefix-code-omega", |b| {
        let mut s = PrefixCodeScheduler::omega(&graph);
        let mut t = 0u64;
        b.iter(|| {
            let happy = s.happy_set(t);
            t += 1;
            black_box(happy)
        })
    });
    group.bench_function("periodic-degree-bound", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        let mut t = 0u64;
        b.iter(|| {
            let happy = s.happy_set(t);
            t += 1;
            black_box(happy)
        })
    });
    group.bench_function("first-come-first-grab", |b| {
        let mut s = FirstComeFirstGrab::new(&graph, 3);
        let mut t = 0u64;
        b.iter(|| {
            let happy = s.happy_set(t);
            t += 1;
            black_box(happy)
        })
    });
    group.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let graph = test_graph(2_000);
    let mut group = c.benchmark_group("analysis-pipeline");
    group.sample_size(10);
    group.bench_function("periodic-degree-bound-512-holidays", |b| {
        b.iter(|| {
            let mut s = PeriodicDegreeBound::new(&graph);
            black_box(analyze_schedule(&graph, &mut s, 512))
        })
    });
    group.bench_function("phased-greedy-512-holidays", |b| {
        b.iter(|| {
            let mut s = PhasedGreedy::new(&graph);
            black_box(analyze_schedule(&graph, &mut s, 512))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_construction, bench_per_holiday, bench_full_analysis);
criterion_main!(benches);
