//! Criterion benchmarks for the schedulers: construction cost and per-holiday
//! cost of every algorithm in the paper, plus the full-analysis pipeline used
//! by experiments E1/E4/E6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fhg_core::analysis::analyze_schedule;
use fhg_core::prelude::*;
use fhg_graph::generators;
use fhg_graph::{properties, CsrGraph, Graph, HappySet};

fn test_graph(n: usize) -> Graph {
    generators::erdos_renyi(n, 8.0 / (n as f64 - 1.0), 42)
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler-construction");
    for &n in &[1_000usize, 10_000] {
        let graph = test_graph(n);
        group.bench_with_input(BenchmarkId::new("phased-greedy", n), &graph, |b, g| {
            b.iter(|| black_box(PhasedGreedy::new(g)))
        });
        group.bench_with_input(BenchmarkId::new("prefix-code-omega", n), &graph, |b, g| {
            b.iter(|| black_box(PrefixCodeScheduler::omega(g)))
        });
        group.bench_with_input(BenchmarkId::new("periodic-degree-bound", n), &graph, |b, g| {
            b.iter(|| black_box(PeriodicDegreeBound::new(g)))
        });
        group.bench_with_input(BenchmarkId::new("distributed-degree-bound", n), &graph, |b, g| {
            b.iter(|| black_box(DistributedDegreeBound::new(g, 7)))
        });
    }
    group.finish();
}

fn bench_per_holiday(c: &mut Criterion) {
    let graph = test_graph(10_000);
    let mut group = c.benchmark_group("per-holiday");
    group.bench_function("phased-greedy", |b| {
        let mut s = PhasedGreedy::new(&graph);
        let mut t = 1u64;
        b.iter(|| {
            let happy = s.happy_set(t);
            t += 1;
            black_box(happy)
        })
    });
    group.bench_function("prefix-code-omega", |b| {
        let mut s = PrefixCodeScheduler::omega(&graph);
        let mut t = 0u64;
        b.iter(|| {
            let happy = s.happy_set(t);
            t += 1;
            black_box(happy)
        })
    });
    group.bench_function("periodic-degree-bound", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        let mut t = 0u64;
        b.iter(|| {
            let happy = s.happy_set(t);
            t += 1;
            black_box(happy)
        })
    });
    group.bench_function("first-come-first-grab", |b| {
        let mut s = FirstComeFirstGrab::new(&graph, 3);
        let mut t = 0u64;
        b.iter(|| {
            let happy = s.happy_set(t);
            t += 1;
            black_box(happy)
        })
    });
    group.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let graph = test_graph(2_000);
    let mut group = c.benchmark_group("analysis-pipeline");
    group.sample_size(10);
    group.bench_function("periodic-degree-bound-512-holidays", |b| {
        b.iter(|| {
            let mut s = PeriodicDegreeBound::new(&graph);
            black_box(analyze_schedule(&graph, &mut s, 512))
        })
    });
    group.bench_function("phased-greedy-512-holidays", |b| {
        b.iter(|| {
            let mut s = PhasedGreedy::new(&graph);
            black_box(analyze_schedule(&graph, &mut s, 512))
        })
    });
    group.finish();
}

/// The engine comparison behind the `HappySet` refactor: drive the §5
/// periodic degree-bound scheduler over a 4096-holiday horizon on an
/// `erdos_renyi(10_000, 0.001)` conflict graph through both scheduler APIs.
///
/// The `emit` pair measures the APIs themselves — `happy_set(t)` allocates
/// and converts a fresh `Vec<NodeId>` per holiday, `fill_happy_set(t, &buf)`
/// reuses one `HappySet` with zero allocations per holiday after warm-up.
/// The `verified` pair additionally checks every holiday's independence the
/// way `analyze_schedule` does: the Vec path with the slice-based
/// `properties::is_independent_set` (one fresh bit set per holiday), the
/// fill path with branchless CSR word probes on the reused buffer.
fn bench_happy_set_engine(c: &mut Criterion) {
    let graph = generators::erdos_renyi(10_000, 0.001, 42);
    let csr = CsrGraph::from_graph(&graph);
    const HORIZON: u64 = 4096;
    let mut group = c.benchmark_group("happy-set-engine-10k-4096");
    group.sample_size(10);
    group.bench_function("emit/vec", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let mut total = 0usize;
            for t in 0..HORIZON {
                total += black_box(s.happy_set(t)).len();
            }
            total
        })
    });
    group.bench_function("emit/fill", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        let mut buf = HappySet::new(graph.node_count());
        b.iter(|| {
            let mut total = 0usize;
            for t in 0..HORIZON {
                s.fill_happy_set(t, &mut buf);
                total += black_box(&buf).len();
            }
            total
        })
    });
    group.bench_function("verified/vec", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let mut independent = true;
            for t in 0..HORIZON {
                let happy = s.happy_set(t);
                independent &= properties::is_independent_set(&graph, &happy);
                black_box(&happy);
            }
            assert!(independent);
        })
    });
    group.bench_function("verified/fill", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        let mut buf = HappySet::new(graph.node_count());
        b.iter(|| {
            let mut independent = true;
            for t in 0..HORIZON {
                s.fill_happy_set(t, &mut buf);
                independent &= csr.is_independent(buf.as_bitset());
                black_box(&buf);
            }
            assert!(independent);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_per_holiday,
    bench_full_analysis,
    bench_happy_set_engine
);
criterion_main!(benches);
