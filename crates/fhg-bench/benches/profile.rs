//! Criterion benchmark for the closed-form `CycleProfile` engine: profile
//! construction (single-threaded and on the sharded parallel build),
//! horizon-free derivation (full, and the totals-only fast path), and the
//! end-to-end closed-form analysis at the E11 configuration and at a
//! 1M-holiday horizon, against the forced PR 2 sharded sweep.
//!
//! Configuration matches the `analysis` bench and the acceptance criteria:
//! `erdos_renyi(10_000, 0.001)`, `PeriodicDegreeBound` (cycle 32), horizons
//! 4096 and 2^20.  The headline numbers: the closed form must be at least 3x
//! faster than the sweep at 4096 holidays, and the 1M-holiday analysis must
//! land within 2x of the 4096-holiday one — the profile emits `cycle` happy
//! sets regardless of the horizon, so `derive` is the only part that sees
//! the horizon, and it is `O(n)`.
//!
//! Every engine-driven row forces its engine explicitly through
//! `analyze_schedule_with_engine`, and every `CycleProfile::build` row pins
//! its thread pool — auto-selection (and, since PR 5, the ambient-pool
//! parallel build) must never silently shift what a named row measures
//! (the PR 3 review caught exactly such a shift in the analysis bench).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fhg_core::analysis::{
    analyze_schedule_with_engine, AnalysisEngine, CycleProfile, DeriveScratch, GraphChecker,
};
use fhg_core::prelude::*;
use fhg_graph::generators;
use rayon::ThreadPoolBuilder;

fn bench_cycle_profile(c: &mut Criterion) {
    let graph = generators::erdos_renyi(10_000, 0.001, 42);
    const HORIZON: u64 = 4096;
    const LONG_HORIZON: u64 = 1 << 20;
    let checker = GraphChecker::new(&graph);
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();

    let mut group = c.benchmark_group("cycle-profile-10k");
    group.sample_size(10);

    group.bench_function("profile-build/1-thread", |b| {
        let s = PeriodicDegreeBound::new(&graph);
        let view = s.residue_schedule().expect("perfectly periodic");
        b.iter(|| {
            let profile = pool.install(|| {
                CycleProfile::build(view, s.first_holiday(), graph.node_count(), &checker)
            });
            assert!(profile.all_classes_independent());
            black_box(profile)
        })
    });

    group.bench_function("profile-build/8-threads", |b| {
        let s = PeriodicDegreeBound::new(&graph);
        let view = s.residue_schedule().expect("perfectly periodic");
        let wide_pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        b.iter(|| {
            let profile = wide_pool.install(|| {
                CycleProfile::build(view, s.first_holiday(), graph.node_count(), &checker)
            });
            assert!(profile.all_classes_independent());
            black_box(profile)
        })
    });

    group.bench_function("derive-1M-from-prebuilt-profile", |b| {
        let s = PeriodicDegreeBound::new(&graph);
        let view = s.residue_schedule().expect("perfectly periodic");
        let profile = pool
            .install(|| CycleProfile::build(view, s.first_holiday(), graph.node_count(), &checker));
        let mut scratch = DeriveScratch::new();
        b.iter(|| {
            let analysis =
                profile.derive_with(s.name(), &graph, LONG_HORIZON, &mut scratch).unwrap();
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.bench_function("derive-1M-totals-only", |b| {
        let s = PeriodicDegreeBound::new(&graph);
        let view = s.residue_schedule().expect("perfectly periodic");
        let profile = pool
            .install(|| CycleProfile::build(view, s.first_holiday(), graph.node_count(), &checker));
        let mut scratch = DeriveScratch::new();
        b.iter(|| {
            let totals = profile.derive_totals_with(LONG_HORIZON, &mut scratch).unwrap();
            assert!(totals.all_happy_sets_independent);
            black_box(totals)
        })
    });

    group.bench_function("sweep-4096/forced-1-thread", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let analysis = pool.install(|| {
                analyze_schedule_with_engine(
                    &graph,
                    &mut s,
                    HORIZON,
                    &checker,
                    AnalysisEngine::ShardedSweep,
                )
            });
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.bench_function("closed-form-4096", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let analysis = pool.install(|| {
                analyze_schedule_with_engine(
                    &graph,
                    &mut s,
                    HORIZON,
                    &checker,
                    AnalysisEngine::ClosedForm,
                )
            });
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.bench_function("closed-form-1M", |b| {
        let mut s = PeriodicDegreeBound::new(&graph);
        b.iter(|| {
            let analysis = pool.install(|| {
                analyze_schedule_with_engine(
                    &graph,
                    &mut s,
                    LONG_HORIZON,
                    &checker,
                    AnalysisEngine::ClosedForm,
                )
            });
            assert!(analysis.all_happy_sets_independent);
            black_box(analysis)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cycle_profile);
criterion_main!(benches);
