//! Criterion benchmarks for the prefix-free codes (experiment E2's engine):
//! encoding, decoding and the period computation used by the §4 scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fhg_codes::{rho_omega, BitReader, CodeSchedule, EliasCode, PrefixFreeCode, UnaryCode};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("code-encode");
    let values: Vec<u64> = (1..=4096).collect();
    for (name, code) in [
        ("elias-gamma", EliasCode::gamma()),
        ("elias-delta", EliasCode::delta()),
        ("elias-omega", EliasCode::omega()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, values.len()), &values, |b, vals| {
            b.iter(|| {
                for &v in vals {
                    black_box(code.encode(v));
                }
            })
        });
    }
    group.bench_function("unary-small", |b| {
        b.iter(|| {
            for v in 1..=64u64 {
                black_box(UnaryCode.encode(v));
            }
        })
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("code-decode");
    for (name, code) in [
        ("elias-gamma", EliasCode::gamma()),
        ("elias-delta", EliasCode::delta()),
        ("elias-omega", EliasCode::omega()),
    ] {
        let mut stream = fhg_codes::Codeword::empty();
        for v in 1..=2048u64 {
            stream = stream.concat(&code.encode(v));
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut reader = BitReader::new(&stream);
                let mut sum = 0u64;
                while let Some(v) = code.decode(&mut reader) {
                    sum = sum.wrapping_add(v);
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

fn bench_schedule_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("code-schedule");
    group.bench_function("slot-for-4096-colors", |b| {
        let schedule = CodeSchedule::new(EliasCode::omega());
        b.iter(|| {
            for color in 1..=4096u64 {
                black_box(schedule.slot(color));
            }
        })
    });
    group.bench_function("rho-omega-1e6", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 1..=1_000_000u64 {
                acc += u64::from(rho_omega(v));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_schedule_mapping);
criterion_main!(benches);
