//! Criterion benchmarks for the LOCAL-model substrate (experiment E5's
//! engine): Johansson colouring, Luby MIS and the §5.2 phased slot
//! assignment, sequential vs rayon-parallel node stepping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fhg_distributed::{distributed_slot_assignment, johansson_coloring, luby_mis};
use fhg_graph::generators;

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    for &n in &[1_000usize, 8_000] {
        let graph = generators::erdos_renyi(n, 8.0 / (n as f64 - 1.0), 5);
        group.bench_with_input(BenchmarkId::new("johansson-coloring", n), &graph, |b, g| {
            b.iter(|| black_box(johansson_coloring(g, 3)))
        });
        group.bench_with_input(BenchmarkId::new("luby-mis", n), &graph, |b, g| {
            b.iter(|| black_box(luby_mis(g, 3, 4096)))
        });
        group.bench_with_input(BenchmarkId::new("slot-assignment-5.2", n), &graph, |b, g| {
            b.iter(|| black_box(distributed_slot_assignment(g, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
