//! Criterion benchmarks for the sequential colouring substrate: greedy
//! orderings vs DSATUR (the E1/E2 initial-colouring ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fhg_coloring::{dsatur, greedy_coloring, two_coloring, GreedyOrder};
use fhg_graph::generators;

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    for &n in &[1_000usize, 10_000] {
        let graph = generators::erdos_renyi(n, 10.0 / (n as f64 - 1.0), 9);
        for order in
            [GreedyOrder::Natural, GreedyOrder::DegreeDescending, GreedyOrder::SmallestLast]
        {
            group.bench_with_input(
                BenchmarkId::new(format!("greedy-{}", order.name()), n),
                &graph,
                |b, g| b.iter(|| black_box(greedy_coloring(g, order))),
            );
        }
        group.bench_with_input(BenchmarkId::new("dsatur", n), &graph, |b, g| {
            b.iter(|| black_box(dsatur(g)))
        });
    }
    let bipartite = generators::bipartite_villages(2_000, 2_000, 0.002, 4);
    group.bench_function("two-coloring-villages-4000", |b| {
        b.iter(|| black_box(two_coloring(&bipartite)))
    });
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
