//! Criterion micro-benchmarks for the fused word-kernel subsystem
//! (`fhg_graph::kernels`): the emission-bound fill path, the verification
//! path, and the raw fused-vs-scalar kernel comparison the E13 acceptance
//! criterion is stated on.
//!
//! Three groups:
//!
//! * `kernel-fill` — fill-only: `ResidueSchedule::fill` (reset + multi-row
//!   gather + fused count) over the E11 configuration, plus the raw
//!   `or_rows_count` gather under scalar / portable / dispatched modes on
//!   byte-identical row data.
//! * `kernel-verify` — verify-only: dense AdjacencyBitmap AND-any probes
//!   (4096-node graph, the `DENSE_ADJACENCY_LIMIT` boundary) and branchless
//!   CSR word probes (10k-node graph) over one cycle of happy sets.
//! * `kernel-intersects` — the fused AND-any against the scalar zip on
//!   adversarially long disjoint rows (worst case: no early exit).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fhg_bench::{emission_rows, fill_sweep, AnalysisBenchConfig, ModulusRows};
use fhg_core::analysis::{GraphChecker, HolidayChecker};
use fhg_core::prelude::*;
use fhg_graph::kernels::{self, KernelMode};
use fhg_graph::{generators, CsrGraph, Graph, HappySet};

const HOLIDAYS: u64 = 4096;

/// The exact `AnalysisBenchConfig::full()` conflict graph the E11/E13
/// experiments run on — every 10k-node measurement in this file derives
/// from it, so bench rows and experiment rows drive byte-identical inputs.
fn full_config_graph() -> Graph {
    let cfg = AnalysisBenchConfig::full();
    generators::erdos_renyi(cfg.nodes, cfg.edge_prob, cfg.seed)
}

/// The E11/E13 emission rows at raw-word level: one bit row per (modulus,
/// residue) of the periodic degree-bound schedule on the
/// [`full_config_graph`], rebuilt through the same
/// `fhg_bench::emission_rows` helper `e13` uses.
fn full_config_emission_rows() -> (usize, ModulusRows) {
    let graph = full_config_graph();
    let scheduler = PeriodicDegreeBound::new(&graph);
    let view = scheduler.residue_schedule().expect("perfectly periodic");
    emission_rows(view)
}

fn sweep(rows: &ModulusRows, words: usize, emit: impl FnMut(&mut [u64], &[&[u64]]) -> u64) -> u64 {
    fill_sweep(rows, words, HOLIDAYS, emit)
}

fn bench_fill(c: &mut Criterion) {
    let (words, rows) = full_config_emission_rows();
    let mut group = c.benchmark_group("kernel-fill-10k");
    group.sample_size(10);

    group.bench_function("gather/scalar-reset-or-rescan-4096-fills", |b| {
        b.iter(|| black_box(sweep(&rows, words, kernels::scalar::set_rows_count)))
    });
    group.bench_function("gather/fused-portable-4096-fills", |b| {
        b.iter(|| {
            black_box(sweep(&rows, words, |dst, refs| {
                kernels::set_rows_count_in(KernelMode::Portable, dst, refs)
            }))
        })
    });
    group.bench_function("gather/fused-dispatched-4096-fills", |b| {
        b.iter(|| black_box(sweep(&rows, words, kernels::set_rows_count)))
    });

    let graph = full_config_graph();
    let scheduler = PeriodicDegreeBound::new(&graph);
    let view = scheduler.residue_schedule().expect("perfectly periodic");
    group.bench_function("residue-schedule-fill/end-to-end-4096-fills", |b| {
        let mut buf = HappySet::new(view.node_count());
        b.iter(|| {
            let mut sum = 0u64;
            for t in 0..HOLIDAYS {
                view.fill(t, &mut buf);
                sum += buf.len() as u64;
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel-verify");
    group.sample_size(10);

    // Dense path: AND-any adjacency rows at the DENSE_ADJACENCY_LIMIT edge.
    let graph = generators::erdos_renyi(4096, 10.0 / 4095.0, 7);
    let checker = GraphChecker::new(&graph);
    let scheduler = PeriodicDegreeBound::new(&graph);
    let view = scheduler.residue_schedule().expect("perfectly periodic");
    let cycle = view.cycle();
    let sets: Vec<HappySet> = (0..cycle)
        .map(|t| {
            let mut buf = HappySet::new(view.node_count());
            view.fill(t, &mut buf);
            buf
        })
        .collect();
    group.bench_function("dense-adjacency/one-cycle-4096-nodes", |b| {
        b.iter(|| {
            let ok = sets.iter().enumerate().all(|(t, s)| checker.check(t as u64, s.as_bitset()));
            assert!(ok);
            black_box(ok)
        })
    });

    // CSR path: branchless word probes beyond the dense limit.
    let graph = full_config_graph();
    let csr = CsrGraph::from_graph(&graph);
    let scheduler = PeriodicDegreeBound::new(&graph);
    let view = scheduler.residue_schedule().expect("perfectly periodic");
    let sets: Vec<HappySet> = (0..view.cycle())
        .map(|t| {
            let mut buf = HappySet::new(view.node_count());
            view.fill(t, &mut buf);
            buf
        })
        .collect();
    group.bench_function("csr-word-probes/one-cycle-10k-nodes", |b| {
        b.iter(|| {
            let ok = sets.iter().all(|s| csr.is_independent(s.as_bitset()));
            assert!(ok);
            black_box(ok)
        })
    });
    group.finish();
}

fn bench_intersects(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel-intersects");
    group.sample_size(10);
    // Disjoint even/odd words: the AND-any must scan to the end (worst
    // case — no early exit), 10k bits per side.
    let words = 10_000usize.div_ceil(64);
    let a: Vec<u64> = (0..words as u64).map(|i| if i % 2 == 0 { !0 } else { 0 }).collect();
    let b_: Vec<u64> = (0..words as u64).map(|i| if i % 2 == 1 { !0 } else { 0 }).collect();
    group.bench_function("and-any/scalar-disjoint-10k-bits", |bch| {
        bch.iter(|| {
            let mut hits = 0u32;
            for _ in 0..1024 {
                hits += u32::from(kernels::scalar::intersects(black_box(&a), black_box(&b_)));
            }
            assert_eq!(hits, 0);
            black_box(hits)
        })
    });
    group.bench_function("and-any/fused-dispatched-disjoint-10k-bits", |bch| {
        bch.iter(|| {
            let mut hits = 0u32;
            for _ in 0..1024 {
                hits += u32::from(kernels::intersects(black_box(&a), black_box(&b_)));
            }
            assert_eq!(hits, 0);
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fill, bench_verify, bench_intersects);
criterion_main!(benches);
