//! Criterion benchmarks for the Appendix A algorithms (experiment E9/E10's
//! engine): Hopcroft–Karp vs the linear-time satisfaction algorithm, and
//! exact vs greedy MIS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fhg_graph::generators;
use fhg_matching::{exact_mis, greedy_mis, max_satisfaction_linear, max_satisfaction_matching};

fn bench_satisfaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfaction");
    group.sample_size(20);
    for &n in &[10_000usize, 100_000] {
        let graph = generators::erdos_renyi(n, 3.0 / (n as f64 - 1.0), 37);
        group.bench_with_input(BenchmarkId::new("linear-peeling", n), &graph, |b, g| {
            b.iter(|| black_box(max_satisfaction_linear(g)))
        });
        group.bench_with_input(BenchmarkId::new("hopcroft-karp", n), &graph, |b, g| {
            b.iter(|| black_box(max_satisfaction_matching(g)))
        });
    }
    group.finish();
}

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10);
    let small = generators::erdos_renyi(45, 0.15, 44);
    group.bench_function("exact-branch-and-bound-45", |b| b.iter(|| black_box(exact_mis(&small))));
    let large = generators::erdos_renyi(50_000, 6.0 / 49_999.0, 45);
    group.bench_function("greedy-50k", |b| b.iter(|| black_box(greedy_mis(&large))));
    group.finish();
}

criterion_group!(benches, bench_satisfaction, bench_mis);
criterion_main!(benches);
