//! Criterion benchmarks for the radio application layer (experiment E10b's
//! engine): interference-graph construction and TDMA evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fhg_core::prelude::*;
use fhg_radio::{evaluate_tdma, RadioNetwork};

fn bench_radio(c: &mut Criterion) {
    let mut group = c.benchmark_group("radio");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000] {
        group.bench_with_input(BenchmarkId::new("network-construction", n), &n, |b, &n| {
            b.iter(|| black_box(RadioNetwork::random(n, 0.02, 7)))
        });
        let network = RadioNetwork::random(n, 0.02, 7);
        group.bench_with_input(
            BenchmarkId::new("tdma-degree-bound-256-slots", n),
            &network,
            |b, net| {
                b.iter(|| {
                    let mut s = PeriodicDegreeBound::new(net.interference_graph());
                    black_box(evaluate_tdma(net, &mut s, 256))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tdma-round-robin-256-slots", n),
            &network,
            |b, net| {
                b.iter(|| {
                    let mut s = RoundRobinColoring::new(net.interference_graph());
                    black_box(evaluate_tdma(net, &mut s, 256))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_radio);
criterion_main!(benches);
