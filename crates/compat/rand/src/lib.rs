//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: the [`RngCore`] / [`Rng`]
//! traits with `gen`, `gen_range` and `gen_bool`, [`SeedableRng`] with
//! `seed_from_u64`, and [`seq::SliceRandom::shuffle`].  Semantics follow the
//! upstream crate (uniform ranges via rejection sampling, 53-bit uniform
//! floats, Fisher–Yates shuffling); streams are deterministic per seed but
//! are not guaranteed bit-identical to upstream `rand`.

#![forbid(unsafe_code)]

/// Low-level uniform word generator, implemented by concrete RNGs.
pub trait RngCore {
    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from an [`RngCore`] (the subset of
/// upstream's `Standard` distribution the workspace needs).
pub trait UniformSample: Sized {
    /// Draws one uniformly distributed value.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u64 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for usize {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream convention).
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A half-open or inclusive range that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start + (uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::uniform_sample(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, bound)` by widening-multiply rejection sampling
/// (unbiased; upstream's method).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        f64::uniform_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` by expanding it with SplitMix64 (the
    /// upstream `rand_core` convention).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixer, good enough for API tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 ^ (self.0 >> 33)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Counter(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never stays sorted");
    }
}
