//! Offline stand-in for `rayon`, backed by real OS threads.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the `rayon` API the workspace uses on top of `std::thread`:
//!
//! * [`prelude::IntoParallelRefIterator`] / [`prelude::IntoParallelRefMutIterator`]
//!   giving `par_iter()` / `par_iter_mut()` on slices and `Vec`s, with the
//!   `enumerate` / `map` / `for_each` / `sum` / `collect` combinators the
//!   workspace calls on them;
//! * [`join`] for two-way fork/join;
//! * [`ParIterMut::for_each_isolated`] for crash-only batches: per-job
//!   panics are caught and reported as a [`BatchOutcome`] instead of
//!   re-thrown, so one poisoned job cannot take down its siblings or the
//!   caller (the serving tier quarantines exactly the jobs that died);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] for scoping a region of
//!   code to an explicit thread count (used by the analysis parity tests to
//!   pin 1/2/8 threads without touching the environment);
//! * [`current_num_threads`].
//!
//! # Execution model (work-stealing-lite on a persistent pool)
//!
//! Each parallel call splits its input into contiguous chunks (about four per
//! worker) and publishes them as one *batch* to a *persistent worker pool*
//! (module [`pool`]): worker threads are spawned lazily on first use, kept
//! alive across calls, and repeatedly pull the next chunk from the batch
//! until it is drained — a fast worker simply "steals" the chunks a slow
//! worker never got to claim, and the calling thread always participates, so
//! progress never depends on a worker being free.  Results are tagged with
//! their chunk's base index and reassembled in input order, so every
//! combinator is deterministic: outputs are bit-for-bit identical across
//! thread counts, only timing changes.  A panicking chunk is captured and
//! re-thrown on the calling thread after the batch completes.
//!
//! Persistence matters for latency: the previous implementation spawned
//! scoped threads per call (~50 µs), which dominated sub-millisecond
//! analyses.  With the pool, the steady-state cost of a parallel call is a
//! handful of mutex operations and one `Arc` allocation.
//!
//! # Thread-count knob
//!
//! The default worker count is resolved once, in order: the `FHG_THREADS`
//! environment variable, then `RAYON_NUM_THREADS`, then
//! [`std::thread::available_parallelism`].  `FHG_THREADS=1` (or an installed
//! one-thread pool) makes every entry point run inline on the calling thread —
//! no threads are spawned, the pool is never touched.
//!
//! When a vendored or registry `rayon` becomes available, swapping the path
//! dependency back restores the real work-stealing scheduler with no source
//! changes.

#![deny(unsafe_code)]

use std::cell::Cell;
use std::sync::OnceLock;
use std::thread;

mod pool;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`] on this thread.
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        for var in ["FHG_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(value) = std::env::var(var) {
                if let Some(n) = parse_thread_count(var, &value) {
                    return n;
                }
            }
        }
        thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Parses one thread-count override (factored out of [`default_threads`] so
/// the fallback policy is testable despite the process-wide cache).  Empty
/// values are silently ignored; malformed or zero values warn once to
/// stderr and are ignored — an environment typo must degrade to the
/// detected parallelism, never kill or wedge the process.
fn parse_thread_count(var: &str, value: &str) -> Option<usize> {
    let value = value.trim();
    if value.is_empty() {
        return None;
    }
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!(
                "warning: {var}={value:?} is not a positive thread count; \
                 using detected parallelism"
            );
            None
        }
    }
}

/// The number of worker threads parallel calls on this thread will use: an
/// installed [`ThreadPool`]'s count if one is active, otherwise the process
/// default (`FHG_THREADS` / `RAYON_NUM_THREADS` / available parallelism).
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE.with(Cell::get).unwrap_or_else(default_threads)
}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder using the process-default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (clamped to at least 1).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n.max(1));
        self
    }

    /// Builds the pool.  Never fails in this implementation; the `Result`
    /// mirrors the real rayon signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { threads: self.num_threads.unwrap_or_else(default_threads) })
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced here; kept for
/// API compatibility with the real rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle carrying an explicit thread count for a region of code.
///
/// Unlike the real rayon, the handle owns no threads of its own: `install`
/// only records the count in thread-local state, and each parallel call
/// inside the closure borrows that many participants (itself plus workers)
/// from the process-wide persistent pool.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The thread count parallel calls will use inside [`ThreadPool::install`].
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count as the ambient
    /// [`current_num_threads`] on the calling thread, restoring the previous
    /// count afterwards (also on panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|o| o.set(self.0));
            }
        }
        let _restore = Restore(POOL_OVERRIDE.with(|o| o.replace(Some(self.threads))));
        op()
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
/// With one ambient thread both run inline, `oper_a` first; otherwise the
/// pair is published to the persistent pool as a two-job batch (the calling
/// thread always executes at least one of them).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    enum Task<A, B> {
        A(A),
        B(B),
    }
    enum Out<RA, RB> {
        A(RA),
        B(RB),
    }
    let jobs = vec![(0usize, Task::A(oper_a)), (1, Task::B(oper_b))];
    let mut results = pool::run_batch(jobs, 2, |_base, task: Task<A, B>| match task {
        Task::A(f) => Out::A(f()),
        Task::B(f) => Out::B(f()),
    });
    let out_b = results.pop();
    let out_a = results.pop();
    match (out_a, out_b) {
        (Some((_, Out::A(ra))), Some((_, Out::B(rb)))) => (ra, rb),
        _ => unreachable!("a join batch completes with exactly its two results"),
    }
}

/// Chunks each worker pulls on average; finer granularity lets a fast worker
/// steal the chunks a slow one never claimed.
const CHUNKS_PER_THREAD: usize = 4;

fn chunk_len(total: usize, threads: usize) -> usize {
    total.div_ceil(threads.max(1) * CHUNKS_PER_THREAD).max(1)
}

/// The execution core: runs `work` over `(base_index, chunk)` jobs on the
/// calling thread plus up to `threads - 1` persistent pool workers pulling
/// jobs from the batch, and returns the results sorted back into input
/// order.  Single-threaded (or single-job) calls run inline — no pool, no
/// locks.
fn run_chunked<I, R, F>(jobs: Vec<(usize, I)>, threads: usize, work: F) -> Vec<(usize, R)>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|(base, chunk)| (base, work(base, chunk))).collect();
    }
    pool::run_batch(jobs, threads, work)
}

fn shared_jobs<T>(slice: &[T], threads: usize) -> Vec<(usize, &[T])> {
    let len = chunk_len(slice.len(), threads);
    slice.chunks(len).enumerate().map(|(i, c)| (i * len, c)).collect()
}

fn mut_jobs<T>(slice: &mut [T], threads: usize) -> Vec<(usize, &mut [T])> {
    let len = chunk_len(slice.len(), threads);
    slice.chunks_mut(len).enumerate().map(|(i, c)| (i * len, c)).collect()
}

/// Parallel iterator over `&T` items of a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Pairs every item with its index, preserving input order.
    pub fn enumerate(self) -> ParIterEnum<'data, T> {
        ParIterEnum { slice: self.slice }
    }

    /// Lazily maps every item; consume with `collect` or `sum`.
    pub fn map<R, F>(self, f: F) -> ParIterMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParIterMap { slice: self.slice, f }
    }

    /// Applies `f` to every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data T) + Sync,
    {
        let threads = current_num_threads();
        run_chunked(shared_jobs(self.slice, threads), threads, |_base, chunk: &[T]| {
            for item in chunk {
                f(item);
            }
        });
    }

    /// Sums the items (chunk partial sums, then a sum of partials — exact for
    /// the integer sums the workspace uses).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<&'data T> + std::iter::Sum<S> + Send,
    {
        let threads = current_num_threads();
        run_chunked(shared_jobs(self.slice, threads), threads, |_base, chunk: &[T]| {
            chunk.iter().sum::<S>()
        })
        .into_iter()
        .map(|(_, partial)| partial)
        .sum()
    }
}

/// Indexed parallel iterator over `&T` items.
pub struct ParIterEnum<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIterEnum<'data, T> {
    /// Lazily maps every `(index, item)` pair; consume with `collect`.
    pub fn map<R, F>(self, f: F) -> ParIterEnumMap<'data, T, F>
    where
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        ParIterEnumMap { slice: self.slice, f }
    }
}

/// A mapped parallel iterator over `&T` items, ready to consume.
pub struct ParIterMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParIterMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Collects the mapped items in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let threads = current_num_threads();
        let f = &self.f;
        run_chunked(shared_jobs(self.slice, threads), threads, |_base, chunk: &[T]| {
            chunk.iter().map(f).collect::<Vec<R>>()
        })
        .into_iter()
        .flat_map(|(_, part)| part)
        .collect::<Vec<R>>()
        .into()
    }

    /// Sums the mapped items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R> + std::iter::Sum<S> + Send,
    {
        let threads = current_num_threads();
        let f = &self.f;
        run_chunked(shared_jobs(self.slice, threads), threads, |_base, chunk: &[T]| {
            chunk.iter().map(f).sum::<S>()
        })
        .into_iter()
        .map(|(_, partial)| partial)
        .sum()
    }
}

/// A mapped, indexed parallel iterator over `&T` items.
pub struct ParIterEnumMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParIterEnumMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'data T)) -> R + Sync,
{
    /// Collects the mapped items in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let threads = current_num_threads();
        let f = &self.f;
        run_chunked(shared_jobs(self.slice, threads), threads, |base, chunk: &[T]| {
            chunk.iter().enumerate().map(|(j, item)| f((base + j, item))).collect::<Vec<R>>()
        })
        .into_iter()
        .flat_map(|(_, part)| part)
        .collect::<Vec<R>>()
        .into()
    }
}

/// One job that panicked inside an isolated batch — see
/// [`ParIterMut::for_each_isolated`].
#[derive(Debug)]
pub struct JobPanic {
    /// Index of the input item whose job panicked.
    pub index: usize,
    /// The panic payload, rendered as a string when it was one (`&str` or
    /// `String` payloads; anything else becomes a placeholder).
    pub message: String,
}

/// The result of an isolated batch: which jobs panicked, in input order.
/// Every non-panicking job ran to completion regardless.
#[derive(Debug, Default)]
pub struct BatchOutcome {
    /// The panicked jobs, sorted by input index.
    pub panics: Vec<JobPanic>,
}

impl BatchOutcome {
    /// Whether every job completed without panicking.
    pub fn is_clean(&self) -> bool {
        self.panics.is_empty()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parallel iterator over `&mut T` items of a slice.
pub struct ParIterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Pairs every item with its index, preserving input order.
    pub fn enumerate(self) -> ParIterMutEnum<'data, T> {
        ParIterMutEnum { slice: self.slice }
    }

    /// Applies `f` to every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data mut T) + Sync,
    {
        let threads = current_num_threads();
        run_chunked(mut_jobs(self.slice, threads), threads, |_base, chunk: &'data mut [T]| {
            for item in chunk {
                f(item);
            }
        });
    }

    /// Applies `f` to every item with **per-job panic isolation**: a panic
    /// in `f` is caught on the executing thread and recorded against the
    /// item's index instead of aborting the batch or re-throwing into the
    /// caller (the [`ParIterMut::for_each`] contract).  Every other item —
    /// including the rest of the panicking item's chunk — still runs, and
    /// the returned [`BatchOutcome`] says exactly which jobs died, so a
    /// crash-only caller can poison precisely the state those jobs owned
    /// while the healthy jobs' results stand.
    ///
    /// `f` only gets `&mut` to one item at a time, so item state observed
    /// after a panic is whatever `f` had written so far — the caller decides
    /// whether that is quarantinable or recoverable.
    pub fn for_each_isolated<F>(self, f: F) -> BatchOutcome
    where
        F: Fn(&mut T) + Sync,
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let threads = current_num_threads();
        let panics: std::sync::Mutex<Vec<JobPanic>> = std::sync::Mutex::new(Vec::new());
        run_chunked(mut_jobs(self.slice, threads), threads, |base, chunk: &'data mut [T]| {
            for (j, item) in chunk.iter_mut().enumerate() {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(item))) {
                    panics
                        .lock()
                        .expect("isolated panic list poisoned")
                        .push(JobPanic { index: base + j, message: panic_message(&*payload) });
                }
            }
        });
        let mut panics = panics.into_inner().expect("isolated panic list poisoned");
        panics.sort_unstable_by_key(|p| p.index);
        BatchOutcome { panics }
    }
}

/// Indexed parallel iterator over `&mut T` items.
pub struct ParIterMutEnum<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParIterMutEnum<'data, T> {
    /// Lazily maps every `(index, item)` pair; consume with `collect`.
    pub fn map<R, F>(self, f: F) -> ParIterMutEnumMap<'data, T, F>
    where
        R: Send,
        F: Fn((usize, &'data mut T)) -> R + Sync,
    {
        ParIterMutEnumMap { slice: self.slice, f }
    }
}

/// A mapped, indexed parallel iterator over `&mut T` items.
pub struct ParIterMutEnumMap<'data, T, F> {
    slice: &'data mut [T],
    f: F,
}

impl<'data, T, R, F> ParIterMutEnumMap<'data, T, F>
where
    T: Send,
    R: Send,
    F: Fn((usize, &'data mut T)) -> R + Sync,
{
    /// Collects the mapped items in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let threads = current_num_threads();
        let f = &self.f;
        run_chunked(mut_jobs(self.slice, threads), threads, |base, chunk: &'data mut [T]| {
            chunk.iter_mut().enumerate().map(|(j, item)| f((base + j, item))).collect::<Vec<R>>()
        })
        .into_iter()
        .flat_map(|(_, part)| part)
        .collect::<Vec<R>>()
        .into()
    }
}

/// The parallel-iterator entry-point traits: `use rayon::prelude::*;`.
pub mod prelude {
    use super::{ParIter, ParIterMut};

    /// `par_iter()` on shared slices.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type of the underlying collection.
        type Item: Sync + 'data;

        /// A parallel iterator over `&Self::Item`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    /// `par_iter_mut()` on exclusive slices.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Element type of the underlying collection.
        type Item: Send + 'data;

        /// A parallel iterator over `&mut Self::Item`.
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;

        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { slice: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { slice: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(op)
    }

    #[test]
    fn par_iter_mut_maps_and_collects_like_std() {
        for threads in [1, 2, 8] {
            let mut v: Vec<i32> = (1..=100).collect();
            let expected: Vec<i32> = v.iter().enumerate().map(|(i, x)| *x * 2 + i as i32).collect();
            let doubled: Vec<i32> = with_threads(threads, || {
                v.par_iter_mut().enumerate().map(|(i, x)| *x * 2 + i as i32).collect()
            });
            assert_eq!(doubled, expected, "threads = {threads}");
        }
    }

    #[test]
    fn thread_count_overrides_fall_back_instead_of_wedging() {
        // A malformed FHG_THREADS / RAYON_NUM_THREADS must degrade to the
        // detected parallelism, never kill the process or pin it to a
        // nonsensical count.
        assert_eq!(parse_thread_count("FHG_THREADS", "4"), Some(4));
        assert_eq!(parse_thread_count("FHG_THREADS", " 2 "), Some(2), "whitespace is trimmed");
        assert_eq!(parse_thread_count("FHG_THREADS", ""), None);
        assert_eq!(parse_thread_count("FHG_THREADS", "0"), None, "zero threads is invalid");
        assert_eq!(parse_thread_count("FHG_THREADS", "-1"), None);
        assert_eq!(parse_thread_count("RAYON_NUM_THREADS", "lots"), None);
        assert_eq!(parse_thread_count("FHG_THREADS", "3.5"), None);
    }

    #[test]
    fn par_iter_mut_for_each_mutates_every_item() {
        let mut v = vec![0u64; 1000];
        with_threads(4, || v.par_iter_mut().for_each(|x| *x += 7));
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn par_iter_sum_and_map_agree_with_sequential() {
        let v: Vec<u64> = (0..997).collect();
        for threads in [1, 3, 8] {
            let sum: u64 = with_threads(threads, || v.par_iter().sum());
            assert_eq!(sum, 997 * 996 / 2);
            let mapped: Vec<u64> = with_threads(threads, || v.par_iter().map(|x| x * 3).collect());
            assert_eq!(mapped, v.iter().map(|x| x * 3).collect::<Vec<_>>());
            let total: u64 = with_threads(threads, || v.par_iter().map(|x| x + 1).sum());
            assert_eq!(total, 997 * 996 / 2 + 997);
        }
    }

    #[test]
    fn par_iter_enumerate_preserves_indices() {
        let v: Vec<u32> = (0..257).map(|i| i * 2).collect();
        let pairs: Vec<(usize, u32)> =
            with_threads(5, || v.par_iter().enumerate().map(|(i, x)| (i, *x)).collect());
        for (i, (idx, val)) in pairs.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, (i as u32) * 2);
        }
    }

    #[test]
    fn for_each_really_runs_on_worker_threads() {
        let v = vec![0u8; 64];
        let seen = Mutex::new(HashSet::new());
        with_threads(8, || {
            v.par_iter().for_each(|_| {
                seen.lock().unwrap().insert(thread::current().id());
                // Give other workers a chance to claim chunks.
                thread::yield_now();
            })
        });
        // With one chunk per item group and 8 workers at least one spawned
        // worker participates (the exact count is scheduling-dependent).
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn one_thread_runs_inline_without_spawning() {
        let v = vec![1u64; 16];
        let main_id = thread::current().id();
        with_threads(1, || {
            v.par_iter().for_each(|_| assert_eq!(thread::current().id(), main_id));
        });
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let (a, b) = with_threads(threads, || join(|| 6 * 7, || "ok"));
            assert_eq!(a, 42);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn install_is_scoped_and_restored() {
        let outer = current_num_threads();
        with_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_threads(5, || assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u64> = vec![];
        let collected: Vec<u64> = with_threads(4, || empty.par_iter().map(|x| *x).collect());
        assert!(collected.is_empty());
        let one = [9u64];
        let sum: u64 = with_threads(4, || one.par_iter().sum());
        assert_eq!(sum, 9);
    }

    #[test]
    fn every_chunk_is_processed_exactly_once() {
        let v = vec![1u64; 10_000];
        let counter = AtomicUsize::new(0);
        with_threads(7, || {
            v.par_iter().for_each(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn workers_persist_instead_of_spawning_per_call() {
        // The first call at a given thread count grows the pool to its
        // helper target; repeating the identical call many times must not
        // grow it further (spawn-per-call would not register workers with
        // the pool at all).  Comparing before/after counts — rather than an
        // absolute cap — keeps the assertion valid even if concurrent tests
        // in this process request other thread counts.
        let v: Vec<u64> = (0..4096).collect();
        let sum: u64 = with_threads(8, || v.par_iter().sum());
        assert_eq!(sum, 4096 * 4095 / 2);
        let after_first = super::pool::global().worker_count();
        assert!(after_first >= 7, "an 8-thread call must have grown the pool to 7 helpers");
        for _ in 0..20 {
            let sum: u64 = with_threads(8, || v.par_iter().sum());
            assert_eq!(sum, 4096 * 4095 / 2);
        }
        let after_many = super::pool::global().worker_count();
        assert_eq!(after_first, after_many, "identical repeated calls must reuse the same workers");
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let v = vec![0u64; 128];
            with_threads(4, || v.par_iter().for_each(|_| panic!("boom")));
        });
        assert!(result.is_err());
    }

    #[test]
    fn isolated_batches_record_panics_instead_of_rethrowing() {
        for threads in [1usize, 2, 8] {
            let mut v: Vec<u64> = (0..100).collect();
            let outcome = with_threads(threads, || {
                v.par_iter_mut().for_each_isolated(|x| {
                    if *x % 10 == 3 {
                        panic!("job {x} poisoned");
                    }
                    *x += 1000;
                })
            });
            assert_eq!(
                outcome.panics.iter().map(|p| p.index).collect::<Vec<_>>(),
                vec![3, 13, 23, 33, 43, 53, 63, 73, 83, 93],
                "threads = {threads}: exactly the poisoned jobs are recorded, in order"
            );
            assert!(outcome.panics[0].message.contains("poisoned"), "payload text survives");
            assert!(!outcome.is_clean());
            for (i, x) in v.iter().enumerate() {
                if i % 10 == 3 {
                    assert_eq!(*x, i as u64, "threads = {threads}: a dead job's item is untouched");
                } else {
                    assert_eq!(*x, i as u64 + 1000, "threads = {threads}: healthy jobs complete");
                }
            }
        }
    }

    #[test]
    fn isolated_batches_with_no_panics_are_clean() {
        let mut v = vec![1u32; 64];
        let outcome = with_threads(4, || v.par_iter_mut().for_each_isolated(|x| *x *= 2));
        assert!(outcome.is_clean());
        assert!(v.iter().all(|&x| x == 2));
    }
}
