//! Offline sequential stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `par_iter` / `par_iter_mut` entry points the workspace uses, executing
//! them on ordinary sequential iterators.  All protocols in the workspace are
//! written to produce identical results under sequential and parallel
//! stepping (per-node RNGs, no shared mutable state), so substituting
//! sequential execution changes timing only, never results.  When a vendored
//! or registry `rayon` becomes available, swapping the path dependency back
//! restores real parallelism with no source changes.

#![forbid(unsafe_code)]

/// Sequential re-implementations of the rayon parallel-iterator entry points.
pub mod prelude {
    /// `par_iter()` on shared slices (sequential fallback).
    pub trait IntoParallelRefIterator<'a> {
        /// Item type yielded by the iterator.
        type Item: 'a;
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut()` on exclusive slices (sequential fallback).
    pub trait IntoParallelRefMutIterator<'a> {
        /// Item type yielded by the iterator.
        type Item: 'a;
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;

        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;

        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_maps_and_collects_like_std() {
        let mut v = vec![1, 2, 3];
        let doubled: Vec<i32> =
            v.par_iter_mut().enumerate().map(|(i, x)| *x * 2 + i as i32).collect();
        assert_eq!(doubled, vec![2, 5, 8]);
    }

    #[test]
    fn par_iter_reads_in_order() {
        let v = vec![5, 6, 7];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 18);
    }
}
