//! The persistent worker pool behind every parallel call.
//!
//! Worker threads are spawned lazily the first time a parallel call wants
//! them and then **kept alive for the life of the pool**, parked on a shared
//! batch queue.  A parallel call packages its chunked input as a [`BatchData`]
//! on the calling thread's stack, publishes up to `threads - 1` references to
//! it, and then *participates*: the caller drains chunks alongside the
//! workers, so the batch completes even if every worker is busy (or the pool
//! has fewer workers than requested).  This replaces the previous
//! `std::thread::scope` spawn-per-call model, whose ~50 µs of spawn/join
//! overhead dominated sub-millisecond analyses.
//!
//! # Soundness
//!
//! Batches borrow the caller's stack (the chunk inputs and the work closure
//! are not `'static`), so handing them to persistent threads requires erasing
//! lifetimes behind raw pointers — the same fundamental trick real rayon and
//! crossbeam use.  The protocol that keeps it sound:
//!
//! 1. A worker may dereference the erased pointers only between
//!    *registering* with the batch (`active += 1` under the batch lock, and
//!    only while the batch is not `closed`) and *de-registering*
//!    (`active -= 1`).
//! 2. The caller, after draining the job queue itself, marks the batch
//!    `closed` and **blocks until `active == 0`** before returning — so the
//!    borrowed data outlives every worker access.
//! 3. A queued batch reference picked up after `closed` is a no-op: the
//!    worker observes `closed` under the same lock and never touches the
//!    erased pointers.  The reference itself is an `Arc`, so the control
//!    block stays valid no matter how late the pickup happens.
//!
//! Chunk panics are caught on the executing thread, recorded in the batch,
//! and re-thrown on the calling thread once the batch has fully completed;
//! workers survive panicking batches.  Allocation behaviour is deterministic
//! per call (one `Arc`, the pre-sized job/result vectors, no per-chunk or
//! per-send allocations), which `tests/zero_alloc.rs` relies on.
#![allow(unsafe_code)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};

/// Pending batch references the queue can hold before reallocating; bounded
/// in practice by the largest thread count ever requested per call.
const QUEUE_CAPACITY: usize = 64;

/// The typed half of a batch, living on the calling thread's stack for the
/// duration of [`run_batch`].
struct BatchData<I, R, F> {
    /// Remaining chunk jobs; drained LIFO (results are re-sorted by base).
    jobs: Mutex<Vec<(usize, I)>>,
    /// Completed `(base, result)` pairs, pre-sized to the job count.
    results: Mutex<Vec<(usize, R)>>,
    /// The caller's work closure; outlives the batch by protocol rule 2.
    work: *const F,
    /// First captured chunk panic, re-thrown by the caller.
    panicked: Mutex<Option<Box<dyn Any + Send>>>,
}

/// State guarding the lifetime-erased half of a batch.
struct BatchState {
    /// Set by the caller once the queue is drained; workers observing it
    /// must not touch the erased pointers.
    closed: bool,
    /// Number of workers currently registered with the batch.
    active: usize,
}

/// The lifetime-erased batch handle shared with pool workers.
pub(crate) struct BatchShared {
    /// Erased `*const BatchData<I, R, F>`.
    data: *const (),
    /// Monomorphised drain entry point matching `data`'s erased type.
    drain: unsafe fn(*const ()),
    state: Mutex<BatchState>,
    /// Signalled whenever `active` drops to zero.
    done: Condvar,
}

// SAFETY: the raw pointers are only dereferenced under the registration
// protocol in the module docs (worker registered, batch open, caller blocked
// until active == 0), which makes every access to the pointed-to data happen
// strictly before `run_batch` returns and the data is dropped.  All other
// fields are ordinary sync primitives.
unsafe impl Send for BatchShared {}
unsafe impl Sync for BatchShared {}

impl BatchShared {
    /// Executes the batch on a pool worker: register, drain, de-register.
    fn run_on_worker(&self) {
        {
            let mut state = self.state.lock().expect("batch state poisoned");
            if state.closed {
                return;
            }
            state.active += 1;
        }
        // Chunk panics are caught inside `drain`; the outer guard only keeps
        // the de-registration balanced if `drain` itself ever panicked.
        // SAFETY: registered above with the batch open — protocol rule 1.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (self.drain)(self.data) }));
        let mut state = self.state.lock().expect("batch state poisoned");
        state.active -= 1;
        if state.active == 0 {
            self.done.notify_all();
        }
        drop(state);
        drop(outcome);
    }
}

/// Runs jobs until the queue is empty or a chunk has panicked.  Called by
/// the batch owner directly and by workers through [`drain_erased`].
fn drain<I, R, F: Fn(usize, I) -> R>(data: &BatchData<I, R, F>) {
    loop {
        if data.panicked.lock().expect("panic slot poisoned").is_some() {
            return;
        }
        let job = data.jobs.lock().expect("job queue poisoned").pop();
        let Some((base, input)) = job else { return };
        // SAFETY: `work` points at the closure owned by the `run_batch`
        // frame, which cannot return while this thread is registered.
        let work = unsafe { &*data.work };
        match catch_unwind(AssertUnwindSafe(|| work(base, input))) {
            Ok(result) => data.results.lock().expect("results poisoned").push((base, result)),
            Err(payload) => {
                // Keep the *first* captured panic: a near-simultaneous panic
                // on another participant must not overwrite the root cause.
                let mut slot = data.panicked.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
                return;
            }
        }
    }
}

/// The erased drain entry stored in [`BatchShared`]; monomorphised per
/// `run_batch` call site.
///
/// # Safety
/// `ptr` must be the erased `BatchData<I, R, F>` the matching [`run_batch`]
/// frame owns, and the caller must be registered with the (open) batch.
unsafe fn drain_erased<I, R, F: Fn(usize, I) -> R>(ptr: *const ()) {
    // SAFETY: per the function contract, `ptr` outlives this call.
    let data = unsafe { &*ptr.cast::<BatchData<I, R, F>>() };
    drain(data);
}

/// Runs `jobs` on up to `threads` participants (the caller plus pool
/// workers) and returns the results sorted back into input order.  The
/// caller always participates, so the call completes on any pool state.
pub(crate) fn run_batch<I, R, F>(jobs: Vec<(usize, I)>, threads: usize, work: F) -> Vec<(usize, R)>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let job_count = jobs.len();
    let data = BatchData {
        jobs: Mutex::new(jobs),
        results: Mutex::new(Vec::with_capacity(job_count)),
        work: &work,
        panicked: Mutex::new(None),
    };
    let shared = Arc::new(BatchShared {
        data: (&data as *const BatchData<I, R, F>).cast(),
        drain: drain_erased::<I, R, F>,
        state: Mutex::new(BatchState { closed: false, active: 0 }),
        done: Condvar::new(),
    });
    // One helper per extra thread, never more than the jobs the caller could
    // leave over for them.
    let helpers = (threads - 1).min(job_count.saturating_sub(1));
    global().submit(&shared, helpers);

    drain(&data);

    {
        let mut state = shared.state.lock().expect("batch state poisoned");
        state.closed = true;
        while state.active > 0 {
            state = shared.done.wait(state).expect("batch state poisoned");
        }
    }
    // All workers de-registered and the queue is closed: the batch is quiet,
    // so the borrowed `data`/`work` are no longer referenced anywhere.
    if let Some(payload) = data.panicked.lock().expect("panic slot poisoned").take() {
        resume_unwind(payload);
    }
    let mut results = std::mem::take(&mut *data.results.lock().expect("results poisoned"));
    results.sort_unstable_by_key(|&(base, _)| base);
    results
}

/// Queue shared between submitters and parked workers.
struct Queue {
    batches: VecDeque<Arc<BatchShared>>,
    shutdown: bool,
}

struct Inner {
    queue: Mutex<Queue>,
    available: Condvar,
}

/// A set of persistent worker threads parked on a shared batch queue.
///
/// Workers are spawned lazily up to the largest helper count ever requested
/// and live until the pool is dropped, which closes the queue and joins
/// every worker — the drop path a process-global pool never runs but local
/// pools (and the drain test) do.
pub(crate) struct PersistentPool {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PersistentPool {
    pub(crate) fn new() -> Self {
        PersistentPool {
            inner: Arc::new(Inner {
                queue: Mutex::new(Queue {
                    batches: VecDeque::with_capacity(QUEUE_CAPACITY),
                    shutdown: false,
                }),
                available: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Number of live worker threads (diagnostics and tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.lock().expect("worker list poisoned").len()
    }

    /// Publishes `copies` references to `batch` and wakes parked workers,
    /// growing the pool so at least `copies` workers exist.
    pub(crate) fn submit(&self, batch: &Arc<BatchShared>, copies: usize) {
        if copies == 0 {
            return;
        }
        self.ensure_workers(copies);
        {
            let mut queue = self.inner.queue.lock().expect("pool queue poisoned");
            for _ in 0..copies {
                queue.batches.push_back(Arc::clone(batch));
            }
        }
        self.inner.available.notify_all();
    }

    fn ensure_workers(&self, target: usize) {
        let mut workers = self.workers.lock().expect("worker list poisoned");
        while workers.len() < target {
            let inner = Arc::clone(&self.inner);
            let handle = thread::Builder::new()
                .name(format!("fhg-rayon-worker-{}", workers.len()))
                .spawn(move || worker_loop(&inner))
                .expect("failed to spawn pool worker");
            workers.push(handle);
        }
    }
}

impl Drop for PersistentPool {
    fn drop(&mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
            // Pending references are only ever *extra* helpers; the batches
            // they point at complete through their callers regardless.
            queue.batches.clear();
        }
        self.inner.available.notify_all();
        for handle in self.workers.lock().expect("worker list poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut queue = inner.queue.lock().expect("pool queue poisoned");
            loop {
                if queue.shutdown {
                    return;
                }
                if let Some(batch) = queue.batches.pop_front() {
                    break batch;
                }
                queue = inner.available.wait(queue).expect("pool queue poisoned");
            }
        };
        batch.run_on_worker();
    }
}

/// The process-global pool every parallel call shares.  Never dropped;
/// worker threads end with the process.
pub(crate) fn global() -> &'static PersistentPool {
    static POOL: OnceLock<PersistentPool> = OnceLock::new();
    POOL.get_or_init(PersistentPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropping_a_pool_drains_and_joins_its_workers() {
        let pool = PersistentPool::new();
        pool.ensure_workers(3);
        assert_eq!(pool.worker_count(), 3);
        drop(pool); // must not hang: queue closes, workers exit, joins succeed
    }

    #[test]
    fn pool_grows_to_the_largest_request_and_no_further() {
        let pool = PersistentPool::new();
        pool.ensure_workers(2);
        pool.ensure_workers(1);
        assert_eq!(pool.worker_count(), 2, "requests never shrink the pool");
        pool.ensure_workers(5);
        assert_eq!(pool.worker_count(), 5);
        pool.ensure_workers(5);
        assert_eq!(pool.worker_count(), 5, "no spawn-per-call growth");
    }
}
