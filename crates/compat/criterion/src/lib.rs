//! Offline micro-benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the `criterion` API the workspace's `[[bench]]` targets use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter`, the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`].
//!
//! Methodology: each benchmark is warmed up, then measured over
//! `sample_size` samples; each sample runs enough iterations to cover a
//! minimum measurement window, and the reported statistics are the median,
//! minimum and maximum of the per-iteration times.  Results print to stdout
//! in a stable `name ... time: [median min..max]` format.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time of one measured sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(5);
/// Warm-up budget per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(20);

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args after `--`; the first free-standing
        // argument is a name filter (upstream convention). Flags are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, default_sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let samples = self.default_sample_size;
        self.run_one(&name, samples, &mut f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { sample_size, result: None };
        f(&mut bencher);
        match bencher.result {
            Some(r) => println!(
                "{name:<60} time: [{} {} {}]  ({} samples)",
                format_ns(r.median_ns),
                format_ns(r.min_ns),
                format_ns(r.max_ns),
                r.samples,
            ),
            None => println!("{name:<60} (no measurement recorded)"),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&name, samples, &mut f);
        self
    }

    /// Runs a benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&name, samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (statistics are printed as benchmarks run).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

struct Measurement {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// Timing loop driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`, preventing its result from being optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates how many iterations fill a sample window.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_WINDOW {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let iters_per_sample =
            ((SAMPLE_WINDOW.as_secs_f64() / per_iter).ceil() as u64).clamp(1, u64::MAX);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            per_iter_ns.push(elapsed / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        self.result = Some(Measurement {
            median_ns: median,
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().expect("at least one sample"),
            samples: per_iter_ns.len(),
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` entry point, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut b = Bencher { sample_size: 3, result: None };
        b.iter(|| black_box(21u64 * 2));
        let r = b.result.expect("measurement recorded");
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("phased-greedy", 1000).to_string(), "phased-greedy/1000");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
