//! Offline mini property-testing engine.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the `proptest` API the workspace's tests use: the
//! [`Strategy`] trait over ranges, tuples, collections and value selection,
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! and the `prop_assert*` family.  There is no shrinking: a failing case
//! panics with the case number and seed so it can be replayed by rerunning
//! the deterministic generator.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies while generating a test case.
pub type TestRng = ChaCha8Rng;

/// Runtime configuration of a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exploring a meaningful slice of each input space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategies over collections.
pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `HashSet` of values from `element`; up to `size` attempts, so the
    /// resulting set can be smaller when duplicates collide (upstream
    /// semantics are a size *range*; the lower bound is respected as long as
    /// the element space allows it).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut out = HashSet::with_capacity(target);
            // Bounded retries so tiny element domains cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Strategies that pick from explicit value lists.
pub mod sample {
    use super::*;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly from `options`.
    ///
    /// # Panics
    /// Panics at sampling time if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select requires at least one option");
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Derives the deterministic per-test RNG from the test's identity, so each
/// test explores a stable but distinct stream run over run.
pub fn rng_for(test_ident: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_ident.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests.  Supports the subset of the upstream grammar the
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0usize..9, 0..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        // The immediately-called closure gives `prop_assume!` an early-return
        // scope per generated case.
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let guard = $crate::CaseGuard::new(stringify!($name), case);
                (|| $body)();
                guard.disarm();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Prints which generated case failed when a property panics, since this
/// engine has no shrinker.  Created armed; disarmed on success.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for `case` of test `name`.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard { name, case, armed: true }
    }

    /// Marks the case as passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest: property `{}` failed at generated case {} \
                 (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_name() {
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        let mut c = crate::rng_for("x::z");
        use rand::Rng;
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5, f in 0.25f64..0.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(pairs in prop::collection::vec((0usize..10, 0usize..10), 0..25)) {
            prop_assert!(pairs.len() < 25);
            for (a, b) in pairs {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn assume_skips_cases(a in 0u32..4, b in 0u32..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn configured_case_count_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    proptest! {
        #[test]
        fn hash_sets_reach_their_target_size(s in prop::collection::hash_set(0u64..10_000, 5..30)) {
            prop_assert!(s.len() >= 5 && s.len() < 30);
        }
    }

    proptest! {
        #[test]
        fn select_picks_listed_values(v in prop::sample::select(vec![2usize, 3, 5, 7])) {
            prop_assert!([2, 3, 5, 7].contains(&v));
        }
    }
}
