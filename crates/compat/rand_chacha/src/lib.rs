//! Offline implementation of the ChaCha8 random number generator.
//!
//! Implements the real ChaCha stream cipher core (D. J. Bernstein) with 8
//! rounds, exposed through the workspace's vendored [`rand`] traits.  Streams
//! are high quality and deterministic per seed; they are not guaranteed
//! bit-identical to the upstream `rand_chacha` crate (which nothing in this
//! workspace relies on).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// "expand 32-byte k" — the standard ChaCha constants.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// The ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// 256-bit key (the seed).
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current output block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word within `block`; `BLOCK_WORDS` forces a refill.
    index: usize,
    /// Carry word when `next_u64` straddles no boundary (none needed: we
    /// always read two 32-bit words, refilling between them if required).
    _reserved: (),
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the nonce, fixed to zero for RNG use.
        let initial = state;
        for _ in 0..4 {
            // One double round = 8 quarter rounds; 4 double rounds = ChaCha8.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial) {
            *out = out.wrapping_add(init);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, block: [0; BLOCK_WORDS], index: BLOCK_WORDS, _reserved: () }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_continues_across_blocks() {
        // 16 words per block and next_u64 consumes two words, so 100 draws
        // cross several refills; all values must keep changing.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let vals: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
        let unique: std::collections::HashSet<_> = vals.iter().collect();
        assert_eq!(unique.len(), vals.len(), "100 draws of a 64-bit RNG should not collide");
    }

    #[test]
    fn gen_range_uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from uniform: {counts:?}");
        }
    }

    #[test]
    fn known_chacha_core_property_zero_key_blocks_differ() {
        // Consecutive blocks under the same key must differ (counter mixing).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let b1: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let b2: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(b1, b2);
    }
}
