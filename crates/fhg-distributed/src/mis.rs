//! Luby's randomised maximal-independent-set (MIS) algorithm.
//!
//! MIS is the other canonical LOCAL-model symmetry-breaking primitive the
//! paper's related-work discussion points to (Barenboim–Elkin monograph).  It
//! is used here (a) as an independently useful substrate, (b) as a contrast
//! to the "first come first grab" process — the grab set consists of the
//! local minima of a random wake-up order, an independent set that Luby's
//! algorithm effectively completes into a *maximal* one — and (c) as a
//! comparison point for happy-set sizes in experiment E10.

use rand::Rng;

use fhg_graph::{properties, Graph, NodeId};

use crate::simulator::{ExecutionStats, NodeContext, Protocol, RoundOutput, Simulator};

/// Result of a distributed MIS execution.
#[derive(Debug, Clone)]
pub struct MisOutcome {
    /// Membership flag per node.
    pub in_mis: Vec<bool>,
    /// Simulation statistics.
    pub stats: ExecutionStats,
}

impl MisOutcome {
    /// The members as a node list.
    pub fn members(&self) -> Vec<NodeId> {
        self.in_mis.iter().enumerate().filter_map(|(u, &m)| m.then_some(u)).collect()
    }

    /// Writes the membership into a reusable [`fhg_graph::HappySet`] buffer
    /// without allocating, for callers that treat the MIS as one holiday's
    /// happy set.
    pub fn fill_members(&self, out: &mut fhg_graph::HappySet) {
        out.reset(self.in_mis.len());
        for (u, &m) in self.in_mis.iter().enumerate() {
            if m {
                out.insert(u);
            }
        }
    }

    /// Verifies maximal independence against the graph.
    pub fn is_maximal_independent(&self, graph: &Graph) -> bool {
        properties::is_maximal_independent_set(graph, &self.members())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Undecided,
    InMis,
    Out,
}

/// Per-node state of Luby's algorithm.
#[derive(Debug, Clone)]
pub struct LubyState {
    status: Status,
    /// The random priority drawn this round (if undecided and proposing).
    priority: Option<u64>,
    announced: bool,
    /// Ids of neighbours known to still be undecided.
    active_neighbors: Vec<NodeId>,
}

/// Messages exchanged by Luby's MIS protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LubyMsg {
    /// "My random priority this round is the payload."
    Priority(u64),
    /// "I joined the independent set."
    EnteredMis,
    /// "I am permanently out (a neighbour joined)."
    Dropped,
}

/// Luby's MIS protocol.
pub struct LubyProtocol;

impl Protocol for LubyProtocol {
    type State = LubyState;
    type Message = LubyMsg;

    fn init(&self, ctx: &mut NodeContext<'_>) -> LubyState {
        LubyState {
            status: Status::Undecided,
            priority: None,
            announced: false,
            active_neighbors: ctx.neighbors.to_vec(),
        }
    }

    fn step(
        &self,
        state: &mut LubyState,
        inbox: &[(NodeId, LubyMsg)],
        ctx: &mut NodeContext<'_>,
    ) -> RoundOutput<LubyMsg> {
        // Digest last round's traffic.
        let mut highest_neighbor_priority: Option<(u64, NodeId)> = None;
        for (from, msg) in inbox {
            match msg {
                LubyMsg::Priority(p) => {
                    let candidate = (*p, *from);
                    if highest_neighbor_priority.is_none_or(|best| candidate > best) {
                        highest_neighbor_priority = Some(candidate);
                    }
                }
                LubyMsg::EnteredMis => {
                    if state.status == Status::Undecided {
                        state.status = Status::Out;
                    }
                    state.active_neighbors.retain(|v| v != from);
                }
                LubyMsg::Dropped => {
                    state.active_neighbors.retain(|v| v != from);
                }
            }
        }

        // Resolve our own proposal from last round.
        if state.status == Status::Undecided {
            if let Some(p) = state.priority.take() {
                let wins = match highest_neighbor_priority {
                    None => true,
                    Some((np, nid)) => (p, ctx.node) > (np, nid),
                };
                if wins {
                    state.status = Status::InMis;
                }
            }
        } else {
            state.priority = None;
        }

        match state.status {
            Status::InMis => {
                if !state.announced {
                    state.announced = true;
                    RoundOutput::Broadcast(LubyMsg::EnteredMis)
                } else {
                    RoundOutput::Silent
                }
            }
            Status::Out => {
                if !state.announced {
                    state.announced = true;
                    RoundOutput::Broadcast(LubyMsg::Dropped)
                } else {
                    RoundOutput::Silent
                }
            }
            Status::Undecided => {
                if state.active_neighbors.is_empty() {
                    // Every neighbour is decided and none entered the MIS
                    // (otherwise we would be Out), so we can join.
                    state.status = Status::InMis;
                    state.announced = true;
                    return RoundOutput::Broadcast(LubyMsg::EnteredMis);
                }
                let p: u64 = ctx.rng.gen();
                state.priority = Some(p);
                RoundOutput::Broadcast(LubyMsg::Priority(p))
            }
        }
    }

    fn is_terminated(&self, state: &LubyState) -> bool {
        state.status != Status::Undecided && state.announced
    }
}

/// Runs Luby's MIS algorithm, returning membership and statistics.
pub fn luby_mis(graph: &Graph, seed: u64, max_rounds: u64) -> MisOutcome {
    let protocol = LubyProtocol;
    let sim = Simulator::new(graph, &protocol);
    let (states, stats) = sim.run(seed, max_rounds);
    MisOutcome { in_mis: states.iter().map(|s| s.status == Status::InMis).collect(), stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::structured::{complete, cycle, path, star};
    use fhg_graph::generators::{erdos_renyi, random_tree};
    use proptest::prelude::*;

    fn rounds_budget(n: usize) -> u64 {
        64 + 40 * (n.max(2) as f64).log2().ceil() as u64
    }

    #[test]
    fn mis_on_classic_graphs() {
        for (i, g) in
            [path(10), cycle(11), star(20), complete(8), random_tree(60, 1)].into_iter().enumerate()
        {
            let out = luby_mis(&g, i as u64, rounds_budget(g.node_count()));
            assert!(out.stats.completed, "graph #{i} did not complete");
            assert!(out.is_maximal_independent(&g), "graph #{i} not a maximal independent set");
        }
    }

    #[test]
    fn clique_mis_has_exactly_one_member() {
        let g = complete(15);
        let out = luby_mis(&g, 3, rounds_budget(15));
        assert_eq!(out.members().len(), 1);
    }

    #[test]
    fn star_mis_is_leaves_or_center() {
        let g = star(12);
        let out = luby_mis(&g, 4, rounds_budget(12));
        let members = out.members();
        if members.contains(&0) {
            assert_eq!(members.len(), 1);
        } else {
            assert_eq!(members.len(), 11);
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let out = luby_mis(&Graph::new(0), 0, 10);
        assert!(out.members().is_empty());
        assert!(out.stats.completed);
        let g = Graph::new(6);
        let out = luby_mis(&g, 0, 10);
        assert_eq!(out.members().len(), 6, "all isolated nodes join the MIS");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(100, 0.05, 7);
        let a = luby_mis(&g, 11, rounds_budget(100));
        let b = luby_mis(&g, 11, rounds_budget(100));
        assert_eq!(a.in_mis, b.in_mis);
    }

    #[test]
    fn round_complexity_is_small_in_practice() {
        let g = erdos_renyi(1500, 0.01, 2);
        let out = luby_mis(&g, 0, rounds_budget(1500));
        assert!(out.stats.completed);
        assert!(out.stats.rounds <= 80, "Luby took {} rounds on n=1500", out.stats.rounds);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn luby_always_produces_a_maximal_independent_set(seed in 0u64..200, p in 0.01f64..0.25) {
            let g = erdos_renyi(50, p, seed);
            let out = luby_mis(&g, seed ^ 0xABCD, rounds_budget(50));
            prop_assert!(out.stats.completed);
            prop_assert!(out.is_maximal_independent(&g));
        }
    }
}
