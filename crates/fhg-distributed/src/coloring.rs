//! Distributed list colouring (Johansson's algorithm, the BEPS inner loop).
//!
//! Each still-undecided node proposes a uniformly random colour from its
//! remaining palette and broadcasts the proposal.  If no neighbour proposed
//! the same colour in the same round (ties broken towards the smaller node
//! id, a standard symmetry-breaking refinement that never hurts), the node
//! finalises the colour and announces it; neighbours remove finalised colours
//! from their palettes.  With palettes of size `deg + 1` this terminates in
//! `O(log n)` rounds with high probability and every node ends with a colour
//! at most `deg + 1` — the two properties the paper needs from its
//! colouring black box.

use rand::Rng;

use fhg_coloring::Coloring;
use fhg_graph::{Graph, NodeId};

use crate::simulator::{ExecutionStats, NodeContext, Protocol, RoundOutput, Simulator};

/// Result of a distributed colouring execution.
#[derive(Debug, Clone)]
pub struct ColoringOutcome {
    /// Final colour of every node (`None` only if the round limit was hit).
    pub colors: Vec<Option<u64>>,
    /// Simulation statistics (rounds, messages).
    pub stats: ExecutionStats,
}

impl ColoringOutcome {
    /// Converts to a [`Coloring`] (1-based `u32` colours) if every node
    /// decided and every colour fits in a `u32`.
    pub fn to_coloring(&self) -> Option<Coloring> {
        let colors: Option<Vec<u32>> =
            self.colors.iter().map(|c| c.and_then(|x| u32::try_from(x).ok())).collect();
        colors.map(Coloring::from_vec_unchecked)
    }
}

/// Messages exchanged by the list-colouring protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// "I propose this colour this round."
    Propose(u64),
    /// "I have permanently taken this colour."
    Finalized(u64),
}

/// Per-node state of the list-colouring protocol.
#[derive(Debug, Clone)]
pub struct ListColoringState {
    /// Remaining candidate colours.
    palette: Vec<u64>,
    /// The colour proposed this round, if any.
    proposal: Option<u64>,
    /// The finalised colour.
    pub decided: Option<u64>,
    /// Whether the finalisation announcement has been sent.
    announced: bool,
    /// Whether the node participates at all (non-participants decide nothing
    /// and terminate immediately); used by the §5.2 phased execution.
    participating: bool,
}

/// The Johansson / BEPS-style list-colouring protocol.
///
/// `palettes[u]` is the list of colours node `u` may take.  A node that is
/// not participating (empty slice in `participants`, see
/// [`ListColoringProtocol::with_participants`]) terminates immediately.
pub struct ListColoringProtocol {
    palettes: Vec<Vec<u64>>,
    participants: Option<Vec<bool>>,
}

impl ListColoringProtocol {
    /// Protocol in which every node participates with its given palette.
    pub fn new(palettes: Vec<Vec<u64>>) -> Self {
        ListColoringProtocol { palettes, participants: None }
    }

    /// Restricts execution to the nodes with `participants[u] == true`;
    /// non-participants terminate immediately with no colour.
    pub fn with_participants(mut self, participants: Vec<bool>) -> Self {
        self.participants = Some(participants);
        self
    }

    fn participates(&self, u: NodeId) -> bool {
        self.participants.as_ref().is_none_or(|p| p[u])
    }
}

impl Protocol for ListColoringProtocol {
    type State = ListColoringState;
    type Message = Msg;

    fn init(&self, ctx: &mut NodeContext<'_>) -> ListColoringState {
        ListColoringState {
            palette: self.palettes[ctx.node].clone(),
            proposal: None,
            decided: None,
            announced: false,
            participating: self.participates(ctx.node),
        }
    }

    fn step(
        &self,
        state: &mut ListColoringState,
        inbox: &[(NodeId, Msg)],
        ctx: &mut NodeContext<'_>,
    ) -> RoundOutput<Msg> {
        // Process what neighbours said last round.
        let mut conflict = false;
        for (from, msg) in inbox {
            match msg {
                Msg::Propose(c) => {
                    if state.proposal == Some(*c) && *from < ctx.node {
                        conflict = true;
                    }
                }
                Msg::Finalized(c) => {
                    state.palette.retain(|x| x != c);
                    if state.proposal == Some(*c) {
                        conflict = true;
                    }
                }
            }
        }

        // If we proposed last round and nobody beat us to it, finalise.
        if state.decided.is_none() {
            if let Some(p) = state.proposal.take() {
                if !conflict && state.palette.contains(&p) {
                    state.decided = Some(p);
                }
            }
        }

        if let Some(c) = state.decided {
            if !state.announced {
                state.announced = true;
                return RoundOutput::Broadcast(Msg::Finalized(c));
            }
            return RoundOutput::Silent;
        }

        // Still undecided: propose a random colour from the remaining palette.
        if state.palette.is_empty() {
            // Palette exhausted — cannot happen with deg+1-sized palettes, but
            // a caller-supplied palette may be too small.  Stay undecided.
            return RoundOutput::Silent;
        }
        let pick = state.palette[ctx.rng.gen_range(0..state.palette.len())];
        state.proposal = Some(pick);
        RoundOutput::Broadcast(Msg::Propose(pick))
    }

    fn is_terminated(&self, state: &ListColoringState) -> bool {
        !state.participating || (state.decided.is_some() && state.announced)
    }
}

/// Runs distributed list colouring with explicit per-node palettes.
///
/// Returns the decided colours (in palette value space) and execution
/// statistics.  Nodes whose palette is too small may remain undecided when
/// the round limit is reached.
pub fn list_coloring(
    graph: &Graph,
    palettes: Vec<Vec<u64>>,
    seed: u64,
    max_rounds: u64,
) -> ColoringOutcome {
    assert_eq!(palettes.len(), graph.node_count(), "one palette per node required");
    let protocol = ListColoringProtocol::new(palettes);
    let sim = Simulator::new(graph, &protocol);
    let (states, stats) = sim.run(seed, max_rounds);
    ColoringOutcome { colors: states.into_iter().map(|s| s.decided).collect(), stats }
}

/// Runs the list-colouring protocol restricted to a subset of participating
/// nodes (the §5.2 phased execution).  Non-participants keep `None`.
pub fn list_coloring_among(
    graph: &Graph,
    palettes: Vec<Vec<u64>>,
    participants: Vec<bool>,
    seed: u64,
    max_rounds: u64,
) -> ColoringOutcome {
    assert_eq!(palettes.len(), graph.node_count());
    assert_eq!(participants.len(), graph.node_count());
    let protocol = ListColoringProtocol::new(palettes).with_participants(participants);
    let sim = Simulator::new(graph, &protocol);
    let (states, stats) = sim.run(seed, max_rounds);
    ColoringOutcome { colors: states.into_iter().map(|s| s.decided).collect(), stats }
}

/// Distributed `(deg + 1)`-colouring: Johansson's algorithm with the palette
/// `{1, …, deg(u) + 1}` at every node.  This is the substitute for the BEPS
/// black box used to initialise the §3 scheduler: the colour of a node never
/// exceeds its degree plus one.
pub fn johansson_coloring(graph: &Graph, seed: u64) -> (Coloring, ExecutionStats) {
    let palettes: Vec<Vec<u64>> =
        graph.nodes().map(|u| (1..=(graph.degree(u) as u64 + 1)).collect()).collect();
    // O(log n) w.h.p.; 40 log2(n) + 64 rounds gives astronomically comfortable slack.
    let max_rounds = 64 + 40 * (graph.node_count().max(2) as f64).log2().ceil() as u64;
    let outcome = list_coloring(graph, palettes, seed, max_rounds);
    let coloring =
        outcome.to_coloring().expect("deg+1 palettes always terminate within the round budget");
    (coloring, outcome.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::structured::{complete, cycle, path, star};
    use fhg_graph::generators::{barabasi_albert, erdos_renyi};
    use proptest::prelude::*;

    #[test]
    fn johansson_produces_proper_degree_bounded_coloring() {
        for (i, g) in [path(20), cycle(21), star(30), complete(12), erdos_renyi(150, 0.05, 3)]
            .into_iter()
            .enumerate()
        {
            let (coloring, stats) = johansson_coloring(&g, i as u64);
            assert!(coloring.is_proper(&g), "graph #{i} colouring not proper");
            assert!(
                coloring.is_degree_plus_one_bounded(&g),
                "graph #{i} violates colour <= deg + 1"
            );
            assert!(stats.completed);
            assert!(stats.rounds >= 1 || g.node_count() == 0);
        }
    }

    #[test]
    fn johansson_is_deterministic_per_seed() {
        let g = erdos_renyi(80, 0.08, 9);
        let (a, _) = johansson_coloring(&g, 5);
        let (b, _) = johansson_coloring(&g, 5);
        let (c, _) = johansson_coloring(&g, 6);
        assert_eq!(a, b);
        // Different seeds almost surely differ on a graph this size.
        assert_ne!(a, c);
    }

    #[test]
    fn round_complexity_is_logarithmic_in_practice() {
        // Not a proof, but the paper's round-count claims are about the
        // initial colouring; check the simulator reports a small number.
        let g = erdos_renyi(2000, 0.005, 1);
        let (_, stats) = johansson_coloring(&g, 0);
        assert!(stats.completed);
        assert!(stats.rounds <= 60, "expected O(log n) rounds, got {} for n=2000", stats.rounds);
    }

    #[test]
    fn list_coloring_with_explicit_palettes() {
        // A triangle where each node's palette has exactly deg+1 = 3 entries.
        let g = complete(3);
        let palettes = vec![vec![10, 20, 30]; 3];
        let outcome = list_coloring(&g, palettes, 2, 200);
        assert!(outcome.stats.completed);
        let colors: Vec<u64> = outcome.colors.iter().map(|c| c.unwrap()).collect();
        assert_ne!(colors[0], colors[1]);
        assert_ne!(colors[1], colors[2]);
        assert_ne!(colors[0], colors[2]);
        for &c in &colors {
            assert!([10, 20, 30].contains(&c));
        }
    }

    #[test]
    fn too_small_palettes_leave_nodes_undecided() {
        // Two adjacent nodes sharing a single-colour palette can never both
        // decide; the simulator must stop at the round limit rather than hang.
        let g = path(2);
        let palettes = vec![vec![1], vec![1]];
        let outcome = list_coloring(&g, palettes, 0, 50);
        assert!(!outcome.stats.completed);
        let decided: Vec<_> = outcome.colors.iter().filter(|c| c.is_some()).collect();
        assert!(decided.len() <= 1, "at most one endpoint can take the only colour");
        assert!(outcome.to_coloring().is_none());
    }

    #[test]
    fn participants_restriction_is_respected() {
        let g = path(4);
        let palettes = vec![vec![1, 2, 3]; 4];
        let participants = vec![true, false, true, false];
        let outcome = list_coloring_among(&g, palettes, participants, 1, 100);
        assert!(outcome.stats.completed);
        assert!(outcome.colors[0].is_some());
        assert!(outcome.colors[1].is_none());
        assert!(outcome.colors[2].is_some());
        assert!(outcome.colors[3].is_none());
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let g = Graph::new(0);
        let (c, stats) = johansson_coloring(&g, 0);
        assert!(c.is_empty());
        assert!(stats.completed);
        let g = Graph::new(5);
        let (c, _) = johansson_coloring(&g, 0);
        assert!(c.as_slice().iter().all(|&x| x == 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn johansson_on_random_graphs_is_always_proper(seed in 0u64..200, p in 0.01f64..0.2) {
            let g = erdos_renyi(60, p, seed);
            let (coloring, stats) = johansson_coloring(&g, seed.wrapping_mul(31));
            prop_assert!(stats.completed);
            prop_assert!(coloring.is_proper(&g));
            prop_assert!(coloring.is_degree_plus_one_bounded(&g));
        }

        #[test]
        #[ignore = "slow; run with --ignored for the full sweep"]
        fn johansson_on_heavy_tailed_graphs(seed in 0u64..20) {
            let g = barabasi_albert(300, 3, seed);
            let (coloring, _) = johansson_coloring(&g, seed);
            prop_assert!(coloring.is_proper(&g));
            prop_assert!(coloring.is_degree_plus_one_bounded(&g));
        }
    }
}
