//! The distributed degree-bound slot assignment of paper §5.2.
//!
//! The sequential §5.1 algorithm assigns each node `p` of degree `d` an
//! integer `x ∈ [0, 2^j)` with `j = ⌈log₂(d+1)⌉`, processing nodes in
//! decreasing degree order so that a free residue always exists
//! (Lemma 5.1).  The distributed version runs `⌈log₂(Δ+1)⌉ + 1` *phases*,
//! from the largest exponent down to 0; in phase `i` exactly the nodes with
//! `⌈log₂(deg+1)⌉ = i` participate in a restricted-palette distributed
//! colouring where the palette excludes every residue (mod `2^i`) already
//! taken by a neighbour from an earlier phase.  Lemma 5.2 shows no two
//! adjacent nodes can end up hosting the same holiday.

use fhg_graph::{Graph, HappySet, NodeId};

use crate::coloring::list_coloring_among;
use crate::simulator::ExecutionStats;

/// The slot exponent `⌈log₂(d + 1)⌉` of a node of degree `d`.
fn exponent_of_degree(d: usize) -> u32 {
    ((d + 1) as u64).next_power_of_two().trailing_zeros()
}

/// Result of the distributed §5.2 slot assignment.
#[derive(Debug, Clone)]
pub struct SlotAssignmentOutcome {
    /// The integer slot chosen by every node; node `u` hosts every holiday
    /// `t ≡ slots[u] (mod 2^exponents[u])`.
    pub slots: Vec<u64>,
    /// The slot exponent of every node (`⌈log₂(deg+1)⌉`).
    pub exponents: Vec<u32>,
    /// Number of phases executed (`⌈log₂(Δ+1)⌉ + 1`).
    pub phases: u32,
    /// Summed statistics over all phases.
    pub stats: ExecutionStats,
}

impl SlotAssignmentOutcome {
    /// The period of node `u`: `2^{⌈log₂(deg+1)⌉} ≤ 2·deg` (Theorem 5.3).
    pub fn period(&self, u: NodeId) -> u64 {
        1u64 << self.exponents[u]
    }

    /// Whether node `u` hosts at holiday `t`.
    pub fn hosts(&self, u: NodeId, t: u64) -> bool {
        t % self.period(u) == self.slots[u]
    }

    /// Writes the full hosting set of holiday `t` into `out` without
    /// allocating — the engine entry point behind
    /// `DistributedDegreeBound::fill_happy_set` in `fhg-core`.  The period
    /// is a power of two, so a mask replaces the hardware divide.
    pub fn fill_hosts(&self, t: u64, out: &mut HappySet) {
        out.reset(self.slots.len());
        for (u, (&slot, &exp)) in self.slots.iter().zip(&self.exponents).enumerate() {
            if t & ((1u64 << exp) - 1) == slot {
                out.insert(u);
            }
        }
    }

    /// Checks Lemma 5.2: no two adjacent nodes ever host at the same holiday,
    /// i.e. their slots differ modulo the smaller of their two periods.
    pub fn verify_no_conflicts(&self, graph: &Graph) -> bool {
        graph.edges().all(|e| {
            let m = 1u64 << self.exponents[e.u].min(self.exponents[e.v]);
            self.slots[e.u] % m != self.slots[e.v] % m
        })
    }
}

/// Runs the §5.2 distributed degree-bound slot assignment.
///
/// `seed` drives all per-node randomness; the result is deterministic per
/// seed.  Panics only if the internal round budget is exceeded, which the
/// Lemma 5.1 palette-size argument makes astronomically unlikely.
pub fn distributed_slot_assignment(graph: &Graph, seed: u64) -> SlotAssignmentOutcome {
    let n = graph.node_count();
    let exponents: Vec<u32> = graph.nodes().map(|u| exponent_of_degree(graph.degree(u))).collect();
    let max_exponent = exponents.iter().copied().max().unwrap_or(0);
    let mut slots: Vec<Option<u64>> = vec![None; n];
    let mut stats = ExecutionStats { rounds: 0, messages: 0, completed: true };
    let max_rounds_per_phase = 64 + 40 * (n.max(2) as f64).log2().ceil() as u64;

    // Phases from the largest exponent (highest degree class) down to 0.
    for (phase_index, i) in (0..=max_exponent).rev().enumerate() {
        let participants: Vec<bool> = (0..n).map(|u| exponents[u] == i).collect();
        if !participants.iter().any(|&p| p) {
            continue;
        }
        let modulus = 1u64 << i;
        // Restricted palettes: residues not blocked by already-assigned neighbours.
        let palettes: Vec<Vec<u64>> = (0..n)
            .map(|u| {
                if !participants[u] {
                    return Vec::new();
                }
                let mut blocked = vec![false; modulus as usize];
                for &v in graph.neighbors(u) {
                    if let Some(x) = slots[v] {
                        blocked[(x % modulus) as usize] = true;
                    }
                }
                (0..modulus).filter(|&x| !blocked[x as usize]).collect()
            })
            .collect();
        let phase_seed = seed.wrapping_add(0x9E37_79B9u64.wrapping_mul(phase_index as u64 + 1));
        let outcome = list_coloring_among(
            graph,
            palettes,
            participants.clone(),
            phase_seed,
            max_rounds_per_phase,
        );
        stats.rounds += outcome.stats.rounds;
        stats.messages += outcome.stats.messages;
        stats.completed &= outcome.stats.completed;
        for u in 0..n {
            if participants[u] {
                slots[u] = Some(
                    outcome.colors[u]
                        .expect("restricted palettes are large enough (Lemma 5.1) to terminate"),
                );
            }
        }
    }

    SlotAssignmentOutcome {
        slots: slots.into_iter().map(|s| s.unwrap_or(0)).collect(),
        exponents,
        phases: max_exponent + 1,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::structured::{complete, cycle, path, star};
    use fhg_graph::generators::{barabasi_albert, erdos_renyi};
    use proptest::prelude::*;

    #[test]
    fn exponents_match_definition() {
        assert_eq!(exponent_of_degree(0), 0);
        assert_eq!(exponent_of_degree(1), 1);
        assert_eq!(exponent_of_degree(3), 2);
        assert_eq!(exponent_of_degree(4), 3);
        assert_eq!(exponent_of_degree(7), 3);
        assert_eq!(exponent_of_degree(8), 4);
    }

    #[test]
    fn classic_graphs_are_conflict_free_with_2d_periods() {
        for (i, g) in [path(12), cycle(13), star(20), complete(9), erdos_renyi(120, 0.06, 3)]
            .into_iter()
            .enumerate()
        {
            let out = distributed_slot_assignment(&g, i as u64);
            assert!(out.stats.completed, "graph #{i} hit the round budget");
            assert!(out.verify_no_conflicts(&g), "graph #{i} has a hosting conflict");
            for u in g.nodes() {
                let d = g.degree(u);
                assert!(out.period(u) >= (d + 1) as u64 || d == 0);
                assert!(out.period(u) <= (2 * d.max(1)) as u64 || d == 0);
                assert!(out.slots[u] < out.period(u));
            }
        }
    }

    #[test]
    fn every_holiday_has_an_independent_hosting_set() {
        let g = erdos_renyi(60, 0.1, 9);
        let out = distributed_slot_assignment(&g, 5);
        // One adjacency checker and one member buffer for the whole sweep
        // (`is_independent_set` would rebuild both per holiday; this crate
        // sits below `fhg-core`, so the dense layout its `GraphChecker`
        // would pick here is used directly).
        let adj = fhg_graph::properties::AdjacencyBitmap::from_graph(&g);
        let mut hosts = fhg_graph::FixedBitSet::new(g.node_count());
        for t in 0..256u64 {
            hosts.clear();
            g.nodes().filter(|&u| out.hosts(u, t)).for_each(|u| {
                hosts.insert(u);
            });
            assert!(adj.is_independent(&hosts), "holiday {t}: hosting set not independent");
        }
    }

    #[test]
    fn star_center_gets_the_long_period() {
        let g = star(9); // centre degree 8 → period 16; leaves degree 1 → period 2
        let out = distributed_slot_assignment(&g, 1);
        assert_eq!(out.period(0), 16);
        for leaf in 1..9 {
            assert_eq!(out.period(leaf), 2);
        }
        assert!(out.verify_no_conflicts(&g));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(70, 0.08, 2);
        let a = distributed_slot_assignment(&g, 42);
        let b = distributed_slot_assignment(&g, 42);
        assert_eq!(a.slots, b.slots);
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let out = distributed_slot_assignment(&Graph::new(0), 0);
        assert!(out.slots.is_empty());
        let g = Graph::new(4);
        let out = distributed_slot_assignment(&g, 0);
        assert!(out.slots.iter().all(|&s| s == 0));
        assert!(out.exponents.iter().all(|&e| e == 0));
        // Isolated parents host every holiday.
        assert!(out.hosts(2, 0) && out.hosts(2, 1));
    }

    #[test]
    fn heavy_tailed_graph_gives_hubs_long_periods_and_leaves_short_ones() {
        let g = barabasi_albert(400, 2, 7);
        let out = distributed_slot_assignment(&g, 3);
        assert!(out.verify_no_conflicts(&g));
        let min_degree_node = g.nodes().min_by_key(|&u| g.degree(u)).unwrap();
        let max_degree_node = g.nodes().max_by_key(|&u| g.degree(u)).unwrap();
        assert!(out.period(min_degree_node) <= 4);
        assert!(out.period(max_degree_node) >= g.degree(max_degree_node) as u64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_graphs_satisfy_theorem_5_3(seed in 0u64..100, p in 0.02f64..0.3) {
            let g = erdos_renyi(40, p, seed);
            let out = distributed_slot_assignment(&g, seed ^ 0x55);
            prop_assert!(out.stats.completed);
            prop_assert!(out.verify_no_conflicts(&g));
            for u in g.nodes() {
                let d = g.degree(u);
                if d > 0 {
                    prop_assert!(out.period(u) <= 2 * d as u64);
                }
            }
        }
    }
}
