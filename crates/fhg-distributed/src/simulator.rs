//! The synchronous LOCAL-model simulator.
//!
//! A [`Protocol`] describes what one node does in one round; the
//! [`Simulator`] executes the protocol on every node of a conflict graph in
//! lock-step rounds, delivering messages between neighbours, until every node
//! has terminated (or a round limit is hit).  Rounds and delivered messages
//! are counted so the experiments can report the communication costs the
//! paper reasons about ("executing each holiday takes another O(1) rounds",
//! Theorem 3.1).
//!
//! Determinism: every node owns a `ChaCha8` RNG seeded from
//! `(simulation seed, node id)`, so an execution is bit-for-bit reproducible
//! regardless of whether node steps run sequentially or on the rayon thread
//! pool.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use fhg_graph::{CsrGraph, Graph, NodeId};

/// Per-node, per-round view of the world: everything a LOCAL-model node is
/// allowed to know.
pub struct NodeContext<'a> {
    /// This node's identifier (nodes know their own ids, as in the LOCAL model).
    pub node: NodeId,
    /// Sorted neighbour ids.
    pub neighbors: &'a [NodeId],
    /// Current round number (0 during `init`).
    pub round: u64,
    /// This node's private randomness source.
    pub rng: &'a mut ChaCha8Rng,
}

impl NodeContext<'_> {
    /// The node's degree.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// What a node wants to transmit at the end of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundOutput<M> {
    /// Send nothing.
    Silent,
    /// Send the same message to every neighbour.
    Broadcast(M),
    /// Send individually addressed messages; targets must be neighbours.
    Unicast(Vec<(NodeId, M)>),
}

/// A distributed algorithm in the synchronous LOCAL model.
pub trait Protocol: Sync {
    /// Per-node state.
    type State: Send;
    /// Message type exchanged between neighbours.
    type Message: Clone + Send + Sync;

    /// Creates the initial state of a node (round 0, before any communication).
    fn init(&self, ctx: &mut NodeContext<'_>) -> Self::State;

    /// Executes one round: consumes the messages received at the start of the
    /// round and returns what to send for delivery at the start of the next.
    fn step(
        &self,
        state: &mut Self::State,
        inbox: &[(NodeId, Self::Message)],
        ctx: &mut NodeContext<'_>,
    ) -> RoundOutput<Self::Message>;

    /// Whether this node has terminated.  A terminated node no longer steps
    /// or sends, but messages addressed to it are still delivered (and
    /// silently dropped).
    fn is_terminated(&self, state: &Self::State) -> bool;
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Number of rounds executed (not counting `init`).
    pub rounds: u64,
    /// Total number of point-to-point messages delivered.
    pub messages: u64,
    /// Whether every node terminated before the round limit.
    pub completed: bool,
}

struct NodeSlot<S> {
    state: S,
    rng: ChaCha8Rng,
    inbox: Vec<(NodeId, usize)>, // indices into the round's message pool
}

/// The synchronous round simulator.
pub struct Simulator<'g, P: Protocol> {
    graph: CsrGraph,
    protocol: &'g P,
    parallel: bool,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Creates a simulator for `protocol` on `graph`.
    pub fn new(graph: &Graph, protocol: &'g P) -> Self {
        Simulator { graph: CsrGraph::from_graph(graph), protocol, parallel: false }
    }

    /// Enables rayon-parallel node stepping.  Results are identical to the
    /// sequential execution because all randomness is per-node.
    pub fn parallel(mut self, enabled: bool) -> Self {
        self.parallel = enabled;
        self
    }

    /// Runs the protocol until every node terminates or `max_rounds` rounds
    /// have been executed.  Returns the final per-node states and statistics.
    pub fn run(&self, seed: u64, max_rounds: u64) -> (Vec<P::State>, ExecutionStats) {
        let n = self.graph.node_count();
        let protocol = self.protocol;
        // Initialise nodes.
        let mut slots: Vec<NodeSlot<P::State>> = (0..n)
            .map(|u| {
                let mut rng = node_rng(seed, u);
                let mut ctx = NodeContext {
                    node: u,
                    neighbors: self.graph.neighbors(u),
                    round: 0,
                    rng: &mut rng,
                };
                let state = protocol.init(&mut ctx);
                NodeSlot { state, rng, inbox: Vec::new() }
            })
            .collect();

        let mut stats = ExecutionStats::default();
        // Message pool for the current round: (sender, message) pairs; each
        // node's inbox stores indices into this pool to avoid cloning large
        // messages more than once per recipient.
        let mut pool: Vec<(NodeId, P::Message)> = Vec::new();

        for round in 1..=max_rounds {
            if slots.iter().all(|s| protocol.is_terminated(&s.state)) {
                stats.completed = true;
                break;
            }
            stats.rounds = round;

            // Step every non-terminated node, producing its output.
            let step_one = |u: usize, slot: &mut NodeSlot<P::State>| -> RoundOutput<P::Message> {
                if protocol.is_terminated(&slot.state) {
                    slot.inbox.clear();
                    return RoundOutput::Silent;
                }
                let inbox: Vec<(NodeId, P::Message)> =
                    slot.inbox.iter().map(|&(from, idx)| (from, pool[idx].1.clone())).collect();
                slot.inbox.clear();
                let mut ctx = NodeContext {
                    node: u,
                    neighbors: self.graph.neighbors(u),
                    round,
                    rng: &mut slot.rng,
                };
                protocol.step(&mut slot.state, &inbox, &mut ctx)
            };

            let outputs: Vec<RoundOutput<P::Message>> = if self.parallel {
                slots.par_iter_mut().enumerate().map(|(u, slot)| step_one(u, slot)).collect()
            } else {
                slots.iter_mut().enumerate().map(|(u, slot)| step_one(u, slot)).collect()
            };

            // Deliver messages for the next round.
            pool.clear();
            for (u, output) in outputs.into_iter().enumerate() {
                match output {
                    RoundOutput::Silent => {}
                    RoundOutput::Broadcast(msg) => {
                        let idx = pool.len();
                        pool.push((u, msg));
                        for &v in self.graph.neighbors(u) {
                            slots[v].inbox.push((u, idx));
                            stats.messages += 1;
                        }
                    }
                    RoundOutput::Unicast(targets) => {
                        for (v, msg) in targets {
                            assert!(
                                self.graph.has_edge(u, v),
                                "node {u} attempted to send to non-neighbour {v}"
                            );
                            let idx = pool.len();
                            pool.push((u, msg));
                            slots[v].inbox.push((u, idx));
                            stats.messages += 1;
                        }
                    }
                }
            }
        }
        if !stats.completed {
            stats.completed = slots.iter().all(|s| protocol.is_terminated(&s.state));
        }
        (slots.into_iter().map(|s| s.state).collect(), stats)
    }
}

/// Derives the private RNG of node `u` from the simulation seed.
fn node_rng(seed: u64, u: NodeId) -> ChaCha8Rng {
    // SplitMix-style mixing so nearby (seed, node) pairs decorrelate.
    let mut z = seed ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{complete, cycle, path, star};
    use rand::Rng;

    /// Every node broadcasts its id once; terminates after it has heard from
    /// all neighbours.  Used to validate message delivery and accounting.
    struct GossipIds;

    #[derive(Debug)]
    struct GossipState {
        heard: Vec<NodeId>,
        sent: bool,
        expected: usize,
    }

    impl Protocol for GossipIds {
        type State = GossipState;
        type Message = NodeId;

        fn init(&self, ctx: &mut NodeContext<'_>) -> GossipState {
            GossipState { heard: Vec::new(), sent: false, expected: ctx.degree() }
        }

        fn step(
            &self,
            state: &mut GossipState,
            inbox: &[(NodeId, NodeId)],
            ctx: &mut NodeContext<'_>,
        ) -> RoundOutput<NodeId> {
            for &(from, id) in inbox {
                assert_eq!(from, id, "gossip carries the sender id");
                state.heard.push(id);
            }
            if !state.sent {
                state.sent = true;
                RoundOutput::Broadcast(ctx.node)
            } else {
                RoundOutput::Silent
            }
        }

        fn is_terminated(&self, state: &GossipState) -> bool {
            state.sent && state.heard.len() >= state.expected
        }
    }

    #[test]
    fn gossip_reaches_all_neighbors_in_two_rounds() {
        for g in [path(6), cycle(7), star(9), complete(5)] {
            let protocol = GossipIds;
            let sim = Simulator::new(&g, &protocol);
            let (states, stats) = sim.run(1, 10);
            assert!(stats.completed);
            assert!(stats.rounds <= 3);
            assert_eq!(stats.messages, 2 * g.edge_count() as u64);
            for (u, s) in states.iter().enumerate() {
                let mut heard = s.heard.clone();
                heard.sort_unstable();
                assert_eq!(heard, g.neighbors(u), "node {u} heard the wrong set");
            }
        }
    }

    #[test]
    fn parallel_and_sequential_executions_agree() {
        let g = erdos_renyi(200, 0.03, 5);
        let protocol = GossipIds;
        let (seq, seq_stats) = Simulator::new(&g, &protocol).run(7, 10);
        let (par, par_stats) = Simulator::new(&g, &protocol).parallel(true).run(7, 10);
        assert_eq!(seq_stats, par_stats);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.heard, b.heard);
        }
    }

    /// A protocol that never terminates, to exercise the round limit.
    struct Forever;

    impl Protocol for Forever {
        type State = u64;
        type Message = ();

        fn init(&self, _ctx: &mut NodeContext<'_>) -> u64 {
            0
        }

        fn step(
            &self,
            state: &mut u64,
            _inbox: &[(NodeId, ())],
            _ctx: &mut NodeContext<'_>,
        ) -> RoundOutput<()> {
            *state += 1;
            RoundOutput::Silent
        }

        fn is_terminated(&self, _state: &u64) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_is_respected() {
        let g = path(4);
        let protocol = Forever;
        let (states, stats) = Simulator::new(&g, &protocol).run(0, 25);
        assert!(!stats.completed);
        assert_eq!(stats.rounds, 25);
        assert!(states.iter().all(|&s| s == 25));
        assert_eq!(stats.messages, 0);
    }

    /// Each node sends a unicast "token" to its smallest neighbour.
    struct SendToSmallest;

    impl Protocol for SendToSmallest {
        type State = (bool, Vec<NodeId>);
        type Message = u8;

        fn init(&self, _ctx: &mut NodeContext<'_>) -> Self::State {
            (false, Vec::new())
        }

        fn step(
            &self,
            state: &mut Self::State,
            inbox: &[(NodeId, u8)],
            ctx: &mut NodeContext<'_>,
        ) -> RoundOutput<u8> {
            state.1.extend(inbox.iter().map(|&(from, _)| from));
            if !state.0 {
                state.0 = true;
                match ctx.neighbors.first() {
                    Some(&v) => RoundOutput::Unicast(vec![(v, 1)]),
                    None => RoundOutput::Silent,
                }
            } else {
                RoundOutput::Silent
            }
        }

        fn is_terminated(&self, state: &Self::State) -> bool {
            state.0
        }
    }

    #[test]
    fn unicast_is_delivered_to_the_addressed_neighbor_only() {
        let g = star(5); // node 0 is the hub; every leaf's smallest neighbour is 0
        let protocol = SendToSmallest;
        let (states, stats) = Simulator::new(&g, &protocol).run(3, 10);
        // Node 0 sends to node 1; each leaf sends to node 0.
        assert_eq!(stats.messages, 5);
        // The second round still runs (nodes terminate after sending, but
        // messages sent in round 1 are delivered at the start of round 2 to
        // already-terminated nodes and dropped) — so the hub may or may not
        // record them.  What must hold: only node 1 could have heard node 0.
        for (u, (_, heard)) in states.iter().enumerate() {
            if u > 1 {
                assert!(heard.is_empty(), "leaf {u} must hear nothing");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-neighbour")]
    fn unicast_to_non_neighbor_panics() {
        struct Bad;
        impl Protocol for Bad {
            type State = bool;
            type Message = ();
            fn init(&self, _ctx: &mut NodeContext<'_>) -> bool {
                false
            }
            fn step(
                &self,
                state: &mut bool,
                _inbox: &[(NodeId, ())],
                ctx: &mut NodeContext<'_>,
            ) -> RoundOutput<()> {
                *state = true;
                if ctx.node == 0 {
                    RoundOutput::Unicast(vec![(3, ())])
                } else {
                    RoundOutput::Silent
                }
            }
            fn is_terminated(&self, state: &bool) -> bool {
                *state
            }
        }
        let g = path(4); // 0 and 3 are not adjacent
        let protocol = Bad;
        Simulator::new(&g, &protocol).run(0, 5);
    }

    /// Nodes record random numbers; used to pin down RNG determinism.
    struct RandomRecorder;

    impl Protocol for RandomRecorder {
        type State = Vec<u64>;
        type Message = ();

        fn init(&self, ctx: &mut NodeContext<'_>) -> Vec<u64> {
            vec![ctx.rng.gen()]
        }

        fn step(
            &self,
            state: &mut Vec<u64>,
            _inbox: &[(NodeId, ())],
            ctx: &mut NodeContext<'_>,
        ) -> RoundOutput<()> {
            state.push(ctx.rng.gen());
            RoundOutput::Silent
        }

        fn is_terminated(&self, state: &Vec<u64>) -> bool {
            state.len() > 3
        }
    }

    #[test]
    fn node_randomness_is_deterministic_and_distinct() {
        let g = path(10);
        let protocol = RandomRecorder;
        let (a, _) = Simulator::new(&g, &protocol).run(42, 10);
        let (b, _) = Simulator::new(&g, &protocol).parallel(true).run(42, 10);
        let (c, _) = Simulator::new(&g, &protocol).run(43, 10);
        assert_eq!(a, b, "same seed, same randomness regardless of execution mode");
        assert_ne!(a, c, "different seed should change the randomness");
        // Distinct nodes get distinct streams.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn empty_graph_completes_immediately() {
        let g = Graph::new(0);
        let protocol = GossipIds;
        let (states, stats) = Simulator::new(&g, &protocol).run(0, 5);
        assert!(states.is_empty());
        assert!(stats.completed);
        assert_eq!(stats.rounds, 0);
    }
}
