//! # fhg-distributed
//!
//! A synchronous LOCAL-model round simulator and the distributed
//! symmetry-breaking algorithms the paper builds on.
//!
//! The paper assumes the standard LOCAL model of distributed computing
//! (Linial; Peleg): computation proceeds in synchronous rounds, in each round
//! every node may exchange messages with its neighbours and update its state,
//! and complexity is measured in rounds.  The paper uses the BEPS randomised
//! `(Δ+1)`-colouring algorithm as a black box, relying only on two
//! properties: the colour a node of degree `d` receives is at most `d + 1`,
//! and the palette can be restricted per node (needed by §5.2).
//!
//! Since BEPS's sub-logarithmic machinery is irrelevant to every
//! schedule-quality claim, we substitute **Johansson's simple randomised
//! list-colouring** (reference [16] of the paper, the inner loop of BEPS):
//! each still-undecided node proposes a uniformly random colour from its
//! remaining palette, keeps it if no neighbour proposed the same colour this
//! round, and removes finalised neighbour colours from its palette.  It
//! terminates in `O(log n)` rounds w.h.p., satisfies both required
//! properties, and — crucially for this reproduction — runs on the same
//! simulator whose round counts experiment E5 reports.
//!
//! Contents:
//!
//! * [`simulator`] — the synchronous message-passing engine (sequential or
//!   rayon-parallel node stepping) with round and message accounting.
//! * [`coloring`] — distributed list colouring (Johansson / BEPS-style),
//!   `(deg+1)`-colouring, and restricted-palette colouring.
//! * [`mis`] — Luby's randomised maximal-independent-set algorithm, used by
//!   the "first come first grab" baseline analysis and as a building block.
//! * [`degree_bound`] — the §5.2 phased, palette-restricted distributed slot
//!   assignment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod degree_bound;
pub mod mis;
pub mod simulator;

pub use coloring::{johansson_coloring, list_coloring, ColoringOutcome};
pub use degree_bound::{distributed_slot_assignment, SlotAssignmentOutcome};
pub use mis::{luby_mis, MisOutcome};
pub use simulator::{ExecutionStats, NodeContext, Protocol, RoundOutput, Simulator};
