//! Hopcroft–Karp maximum bipartite matching.
//!
//! Appendix A.3 reduces maximum satisfaction to maximum matching in the
//! bipartite graph whose left side is the parents and whose right side is the
//! children (each child connected to its two parents); Hopcroft–Karp solves
//! it in `O(√V · E)` [15].  The implementation is a standard BFS-layer /
//! DFS-augment phase algorithm over an explicit bipartite adjacency list.

use std::collections::VecDeque;

/// A bipartite graph with `left` and `right` vertex sets, edges stored as
/// adjacency lists from the left side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    adj: Vec<Vec<usize>>,
    right_count: usize,
}

impl BipartiteGraph {
    /// Creates a bipartite graph with `left_count` left vertices and
    /// `right_count` right vertices and no edges.
    pub fn new(left_count: usize, right_count: usize) -> Self {
        BipartiteGraph { adj: vec![Vec::new(); left_count], right_count }
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.adj.len(), "left vertex {l} out of range");
        assert!(r < self.right_count, "right vertex {r} out of range");
        self.adj[l].push(r);
    }

    /// Number of left vertices.
    pub fn left_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of right vertices.
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Neighbours (right vertices) of left vertex `l`.
    pub fn neighbors(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }
}

/// A matching in a bipartite graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `pair_left[l]` is the right vertex matched to `l`, if any.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[r]` is the left vertex matched to `r`, if any.
    pub pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }

    /// Whether the matching is consistent with the graph (every matched pair
    /// is an edge and the pairing is an involution).
    pub fn is_valid(&self, graph: &BipartiteGraph) -> bool {
        if self.pair_left.len() != graph.left_count()
            || self.pair_right.len() != graph.right_count()
        {
            return false;
        }
        for (l, &pr) in self.pair_left.iter().enumerate() {
            if let Some(r) = pr {
                if !graph.neighbors(l).contains(&r) || self.pair_right[r] != Some(l) {
                    return false;
                }
            }
        }
        for (r, &pl) in self.pair_right.iter().enumerate() {
            if let Some(l) = pl {
                if self.pair_left[l] != Some(r) {
                    return false;
                }
            }
        }
        true
    }
}

const INF: u32 = u32::MAX;

/// Computes a maximum matching with the Hopcroft–Karp algorithm.
pub fn hopcroft_karp(graph: &BipartiteGraph) -> Matching {
    let n_left = graph.left_count();
    let n_right = graph.right_count();
    let mut pair_left: Vec<Option<usize>> = vec![None; n_left];
    let mut pair_right: Vec<Option<usize>> = vec![None; n_right];
    let mut dist: Vec<u32> = vec![INF; n_left];

    loop {
        // BFS phase: layer the free left vertices.
        let mut queue = VecDeque::new();
        for l in 0..n_left {
            if pair_left[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting_layer = false;
        while let Some(l) = queue.pop_front() {
            for &r in graph.neighbors(l) {
                match pair_right[r] {
                    None => found_augmenting_layer = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths.
        let mut augmented = 0usize;
        for l in 0..n_left {
            if pair_left[l].is_none()
                && try_augment(graph, l, &mut pair_left, &mut pair_right, &mut dist)
            {
                augmented += 1;
            }
        }
        if augmented == 0 {
            break;
        }
    }

    Matching { pair_left, pair_right }
}

fn try_augment(
    graph: &BipartiteGraph,
    l: usize,
    pair_left: &mut Vec<Option<usize>>,
    pair_right: &mut Vec<Option<usize>>,
    dist: &mut Vec<u32>,
) -> bool {
    for &r in graph.neighbors(l) {
        let advance = match pair_right[r] {
            None => true,
            Some(l2) => {
                dist[l2] == dist[l].saturating_add(1)
                    && try_augment(graph, l2, pair_left, pair_right, dist)
            }
        };
        if advance {
            pair_left[l] = Some(r);
            pair_right[r] = Some(l);
            return true;
        }
    }
    dist[l] = INF;
    false
}

/// Brute-force maximum matching size for cross-checking on small graphs.
pub fn matching_brute_force(graph: &BipartiteGraph) -> usize {
    fn recurse(graph: &BipartiteGraph, l: usize, used_right: &mut Vec<bool>) -> usize {
        if l == graph.left_count() {
            return 0;
        }
        // Option 1: leave l unmatched.
        let mut best = recurse(graph, l + 1, used_right);
        // Option 2: match l to each free neighbour.
        for &r in graph.neighbors(l) {
            if !used_right[r] {
                used_right[r] = true;
                best = best.max(1 + recurse(graph, l + 1, used_right));
                used_right[r] = false;
            }
        }
        best
    }
    let mut used = vec![false; graph.right_count()];
    recurse(graph, 0, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn graph_from_edges(l: usize, r: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(l, r);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn perfect_matching_on_a_cycle() {
        // Left {0,1,2}, right {0,1,2}, edges forming a 6-cycle.
        let g = graph_from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 3);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn star_matches_only_one() {
        let g = graph_from_edges(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 1);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn empty_graphs() {
        let g = BipartiteGraph::new(0, 0);
        assert_eq!(hopcroft_karp(&g).size(), 0);
        let g = BipartiteGraph::new(3, 4);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 0);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn augmenting_path_is_found_through_rematching() {
        // Classic example where greedy gets 2 but the optimum is 3.
        let g = graph_from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (2, 1), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_validates_endpoints() {
        BipartiteGraph::new(2, 2).add_edge(0, 5);
    }

    #[test]
    fn accessors() {
        let g = graph_from_edges(2, 3, &[(0, 2), (1, 0)]);
        assert_eq!(g.left_count(), 2);
        assert_eq!(g.right_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(0), &[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn matches_brute_force_on_random_graphs(seed in 0u64..500) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let l = rng.gen_range(1..8usize);
            let r = rng.gen_range(1..8usize);
            let mut g = BipartiteGraph::new(l, r);
            for a in 0..l {
                for b in 0..r {
                    if rng.gen_bool(0.35) {
                        g.add_edge(a, b);
                    }
                }
            }
            let m = hopcroft_karp(&g);
            prop_assert!(m.is_valid(&g));
            prop_assert_eq!(m.size(), matching_brute_force(&g));
        }
    }
}
