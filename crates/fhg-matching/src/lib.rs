//! # fhg-matching
//!
//! The Appendix A algorithms of the Family Holiday Gathering paper: what can
//! be achieved in a *single* holiday, with no regard for other years.
//!
//! * **Maximum happiness** (every child home) is exactly maximum independent
//!   set on the conflict graph, hence MAXSNP-hard (Observation A.1).  We
//!   provide an exact branch-and-bound solver for small instances and the
//!   greedy heuristic, so experiment E10 can measure the gap ([`mis`]).
//! * **Maximum satisfaction** (at least one child home) is a maximum
//!   matching in the bipartite parent–child graph, computable in linear time
//!   for this special structure where every child has exactly two parents
//!   (Theorem A.2).  We provide Hopcroft–Karp as the general-purpose solver
//!   and the specialised peeling algorithm ([`satisfaction`],
//!   [`hopcroft_karp`]).
//! * **Fair satisfaction over time**: each child alternating between its two
//!   parents guarantees every parent is satisfied at least every other
//!   holiday ([`satisfaction::AlternatingSatisfaction`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hopcroft_karp;
pub mod mis;
pub mod satisfaction;
pub mod shapley;

pub use hopcroft_karp::{hopcroft_karp, BipartiteGraph, Matching};
pub use mis::{exact_mis, greedy_mis, mis_brute_force};
pub use satisfaction::{
    max_satisfaction_linear, max_satisfaction_matching, AlternatingSatisfaction,
};
pub use shapley::{coalition_value, shapley_estimate};
