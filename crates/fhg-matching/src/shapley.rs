//! Fair-share estimation for the happiness coalition game (Appendix A.2).
//!
//! Appendix A.2 defines a coalitional game on the conflict graph: the value
//! `v(S)` of a set of parents `S` is the size of the maximum independent set
//! of the subgraph induced by `S` (the most happiness those parents could
//! collectively obtain if everyone else gave up).  The appendix argues that
//! fairness notions built on this game — such as the Shapley value — are hard
//! to compute, because the sum of all marginal contributions along any node
//! order equals `MIS(G)`, so approximating the shares approximates MIS, which
//! is inapproximable within `n^{1-ε}`.
//!
//! This module makes that argument executable: a Monte-Carlo Shapley
//! estimator over random orders (each marginal contribution evaluated with
//! the exact MIS solver on the induced prefix subgraph), plus the identity
//! check that the shares sum to `MIS(G)`.  It is intended for *small* graphs
//! only — which is exactly the point the appendix makes.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use fhg_graph::{Graph, NodeId};

use crate::mis::exact_mis;

/// Size of the maximum independent set of the subgraph of `graph` induced by
/// `members` — the coalition value `v(S)` of Appendix A.2.
pub fn coalition_value(graph: &Graph, members: &[NodeId]) -> usize {
    let mut index = vec![usize::MAX; graph.node_count()];
    for (i, &p) in members.iter().enumerate() {
        index[p] = i;
    }
    let mut induced = Graph::new(members.len());
    for (i, &p) in members.iter().enumerate() {
        for &q in graph.neighbors(p) {
            if index[q] != usize::MAX && index[q] > i {
                induced.add_edge(i, index[q]).expect("induced edges are simple");
            }
        }
    }
    exact_mis(&induced).len()
}

/// Monte-Carlo estimate of the Shapley value of every parent in the
/// happiness coalition game, using `samples` random orders.
///
/// Returns one estimated share per node.  The estimator preserves the
/// identity of Appendix A.2 exactly on every sampled order: the marginal
/// contributions along an order sum to `MIS(G)`, so the returned shares
/// always sum to `MIS(G)` (up to floating-point rounding).
///
/// # Panics
/// Panics if `samples == 0`.  Intended for graphs small enough for
/// [`exact_mis`] (≲ 50 nodes).
pub fn shapley_estimate(graph: &Graph, samples: u32, seed: u64) -> Vec<f64> {
    assert!(samples > 0, "at least one sampled order is required");
    let n = graph.node_count();
    let mut totals = vec![0.0f64; n];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<NodeId> = (0..n).collect();
    for _ in 0..samples {
        order.shuffle(&mut rng);
        let mut prefix: Vec<NodeId> = Vec::with_capacity(n);
        let mut previous = 0usize;
        for &p in &order {
            prefix.push(p);
            let value = coalition_value(graph, &prefix);
            totals[p] += (value - previous) as f64;
            previous = value;
        }
    }
    totals.iter().map(|t| t / f64::from(samples)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{complete, path, star};

    #[test]
    fn coalition_values_of_known_sets() {
        let g = star(5);
        assert_eq!(coalition_value(&g, &[1, 2, 3, 4]), 4, "leaves are pairwise independent");
        assert_eq!(coalition_value(&g, &[0, 1]), 1);
        assert_eq!(coalition_value(&g, &[]), 0);
        let g = complete(4);
        assert_eq!(coalition_value(&g, &[0, 1, 2, 3]), 1);
        assert_eq!(coalition_value(&g, &[2]), 1);
    }

    #[test]
    fn shares_sum_to_the_grand_coalition_mis() {
        for (i, g) in
            [star(6), path(7), complete(5), erdos_renyi(14, 0.25, 3)].into_iter().enumerate()
        {
            let shares = shapley_estimate(&g, 40, i as u64);
            let total: f64 = shares.iter().sum();
            let mis = exact_mis(&g).len() as f64;
            assert!((total - mis).abs() < 1e-9, "graph #{i}: shares sum to {total}, MIS is {mis}");
        }
    }

    #[test]
    fn clique_shares_are_symmetric() {
        // On K_n every parent is interchangeable, so each fair share is 1/n.
        let g = complete(6);
        let shares = shapley_estimate(&g, 400, 9);
        for &s in &shares {
            assert!((s - 1.0 / 6.0).abs() < 0.05, "clique share {s} far from 1/6");
        }
    }

    #[test]
    fn star_center_gets_a_small_share() {
        // The centre only contributes when it appears before every leaf, so
        // its share is far below a leaf's.
        let g = star(7);
        let shares = shapley_estimate(&g, 600, 4);
        let center = shares[0];
        let leaf_mean: f64 = shares[1..].iter().sum::<f64>() / 6.0;
        assert!(center < leaf_mean, "centre {center} should be below leaf mean {leaf_mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(12, 0.3, 7);
        assert_eq!(shapley_estimate(&g, 25, 11), shapley_estimate(&g, 25, 11));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_samples_rejected() {
        shapley_estimate(&path(3), 0, 0);
    }
}
