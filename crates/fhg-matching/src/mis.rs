//! Maximum independent set: exact and greedy.
//!
//! Appendix A.1: maximising happiness in a single holiday means finding a
//! maximum independent set of the conflict graph, which is MAXSNP-hard even
//! on degree-3 graphs.  Experiment E10 therefore compares an exact
//! branch-and-bound solver (practical up to ~60 nodes) with the linear-time
//! greedy heuristic that underlies the "first come first grab" baseline.

use fhg_graph::{properties, FixedBitSet, Graph, NodeId};

/// Exact maximum independent set by branch and bound.
///
/// Branching rule: pick a remaining vertex `v` of maximum degree in the
/// remaining subgraph; either exclude `v` (recurse on `S \ {v}`) or include
/// `v` (recurse on `S \ N[v]`).  Vertices of remaining degree ≤ 1 are taken
/// greedily (always safe), which keeps the search tree small for sparse
/// conflict graphs.  Intended for graphs of up to roughly 60 nodes.
pub fn exact_mis(graph: &Graph) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut best: Vec<NodeId> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut alive = FixedBitSet::full(n);
    branch(graph, &mut alive, &mut current, &mut best);
    best.sort_unstable();
    best
}

fn branch(
    graph: &Graph,
    alive: &mut FixedBitSet,
    current: &mut Vec<NodeId>,
    best: &mut Vec<NodeId>,
) {
    // Simplification: repeatedly take vertices whose remaining degree is <= 1.
    let mut taken: Vec<NodeId> = Vec::new();
    let mut removed: Vec<NodeId> = Vec::new();
    loop {
        let mut progress = false;
        for v in 0..graph.node_count() {
            if !alive.contains(v) {
                continue;
            }
            let live_neighbors: Vec<NodeId> =
                graph.neighbors(v).iter().copied().filter(|&u| alive.contains(u)).collect();
            if live_neighbors.len() <= 1 {
                // Taking v is always at least as good as any alternative.
                alive.remove(v);
                removed.push(v);
                for u in live_neighbors {
                    alive.remove(u);
                    removed.push(u);
                }
                current.push(v);
                taken.push(v);
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }

    // Bound: even taking every remaining vertex cannot beat the best.
    let remaining = alive.count();
    if current.len() + remaining <= best.len() {
        restore(alive, current, &taken, &removed);
        return;
    }
    if remaining == 0 {
        if current.len() > best.len() {
            *best = current.clone();
        }
        restore(alive, current, &taken, &removed);
        return;
    }

    // Branch on a maximum-remaining-degree vertex.
    let v = (0..graph.node_count())
        .filter(|&v| alive.contains(v))
        .max_by_key(|&v| graph.neighbors(v).iter().filter(|&&u| alive.contains(u)).count())
        .expect("remaining > 0");

    // Branch 1: include v (removes v and its live neighbours).
    let mut removed_v: Vec<NodeId> = vec![v];
    alive.remove(v);
    for &u in graph.neighbors(v) {
        if alive.contains(u) {
            alive.remove(u);
            removed_v.push(u);
        }
    }
    current.push(v);
    branch(graph, alive, current, best);
    current.pop();
    for &u in &removed_v {
        alive.insert(u);
    }

    // Branch 2: exclude v.
    alive.remove(v);
    branch(graph, alive, current, best);
    alive.insert(v);

    restore(alive, current, &taken, &removed);
}

fn restore(
    alive: &mut FixedBitSet,
    current: &mut Vec<NodeId>,
    taken: &[NodeId],
    removed: &[NodeId],
) {
    for _ in taken {
        current.pop();
    }
    for &v in removed {
        alive.insert(v);
    }
}

/// Greedy independent set: repeatedly take a minimum-degree vertex and delete
/// its closed neighbourhood.  Linear-ish time; no optimality guarantee (the
/// happiness-maximisation hardness of Appendix A.1 is exactly why).
pub fn greedy_mis(graph: &Graph) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut alive = FixedBitSet::full(n);
    let mut degree: Vec<usize> = graph.degrees();
    let mut result = Vec::new();
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&v| degree[v]);
    // Process by initial degree; re-check liveness as we go.  (A true
    // min-remaining-degree heap changes little on the graphs we target.)
    for &v in &order {
        if !alive.contains(v) {
            continue;
        }
        result.push(v);
        alive.remove(v);
        for &u in graph.neighbors(v) {
            if alive.contains(u) {
                alive.remove(u);
                for &w in graph.neighbors(u) {
                    degree[w] = degree[w].saturating_sub(1);
                }
            }
        }
    }
    result.sort_unstable();
    result
}

/// Brute-force maximum independent set by subset enumeration; only for
/// graphs of at most ~25 nodes, used to validate [`exact_mis`].
pub fn mis_brute_force(graph: &Graph) -> Vec<NodeId> {
    let n = graph.node_count();
    assert!(n <= 25, "brute force is limited to 25 nodes, got {n}");
    let mut best: u32 = 0;
    let mut best_mask: u32 = 0;
    for mask in 0u32..(1u32 << n) {
        if mask.count_ones() <= best {
            continue;
        }
        let members: Vec<NodeId> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
        if properties::is_independent_set(graph, &members) {
            best = mask.count_ones();
            best_mask = mask;
        }
    }
    (0..n).filter(|&v| best_mask & (1 << v) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{complete, complete_bipartite, cycle, path, star};
    use proptest::prelude::*;

    #[test]
    fn exact_mis_on_known_graphs() {
        assert_eq!(exact_mis(&complete(6)).len(), 1);
        assert_eq!(exact_mis(&star(10)).len(), 9);
        assert_eq!(exact_mis(&path(7)).len(), 4);
        assert_eq!(exact_mis(&cycle(8)).len(), 4);
        assert_eq!(exact_mis(&cycle(9)).len(), 4);
        assert_eq!(exact_mis(&complete_bipartite(3, 7)).len(), 7);
        assert_eq!(exact_mis(&Graph::new(5)).len(), 5);
        assert!(exact_mis(&Graph::new(0)).is_empty());
    }

    #[test]
    fn exact_mis_returns_an_independent_set() {
        for seed in 0..5u64 {
            let g = erdos_renyi(40, 0.1, seed);
            let mis = exact_mis(&g);
            assert!(properties::is_independent_set(&g, &mis));
        }
    }

    #[test]
    fn greedy_mis_is_maximal_but_can_be_suboptimal() {
        for seed in 0..10u64 {
            let g = erdos_renyi(50, 0.1, seed);
            let greedy = greedy_mis(&g);
            assert!(properties::is_maximal_independent_set(&g, &greedy), "seed {seed}");
        }
        // A graph where greedy-by-degree is provably suboptimal exists, but on
        // most instances it is close; here we only check it never beats exact.
        for seed in 0..5u64 {
            let g = erdos_renyi(30, 0.15, seed);
            assert!(greedy_mis(&g).len() <= exact_mis(&g).len());
        }
    }

    #[test]
    fn brute_force_limit_is_enforced() {
        let result = std::panic::catch_unwind(|| mis_brute_force(&Graph::new(26)));
        assert!(result.is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn exact_matches_brute_force(seed in 0u64..300, p in 0.05f64..0.5) {
            let g = erdos_renyi(14, p, seed);
            let exact = exact_mis(&g);
            let brute = mis_brute_force(&g);
            prop_assert!(properties::is_independent_set(&g, &exact));
            prop_assert_eq!(exact.len(), brute.len());
        }

        #[test]
        fn greedy_is_never_larger_than_exact(seed in 0u64..100) {
            let g = erdos_renyi(20, 0.2, seed);
            prop_assert!(greedy_mis(&g).len() <= exact_mis(&g).len());
        }
    }
}
