//! Maximum satisfaction (Appendix A.3).
//!
//! A parent is *satisfied* in a gathering if at least one of its children
//! comes home.  Every edge of the conflict graph is a married couple that
//! spends the holiday with exactly one of the two parent households, so
//! maximising the number of satisfied parents is a maximum matching in the
//! bipartite graph (parents × couples) in which every couple has exactly two
//! parent neighbours.  Theorem A.2: this is solvable in linear time by
//! repeatedly satisfying "single-child" parents (parents with exactly one
//! unassigned couple left) and otherwise assigning arbitrarily.
//!
//! The appendix also notes that satisfaction can be made *fair over time*
//! trivially: every couple alternates between its two parent households, so
//! every parent with at least one child is satisfied at least every other
//! holiday ([`AlternatingSatisfaction`]).

use std::collections::VecDeque;

use fhg_graph::{Edge, Graph, NodeId};

use crate::hopcroft_karp::{hopcroft_karp, BipartiteGraph};

/// Builds the parents × couples bipartite graph of Appendix A.3 from a
/// conflict graph: left vertices are parents, right vertices are the conflict
/// edges (couples), and each couple is adjacent to its two parents.
pub fn parents_couples_graph(graph: &Graph) -> (BipartiteGraph, Vec<Edge>) {
    let edges: Vec<Edge> = graph.edges().collect();
    let mut bip = BipartiteGraph::new(graph.node_count(), edges.len());
    for (i, e) in edges.iter().enumerate() {
        bip.add_edge(e.u, i);
        bip.add_edge(e.v, i);
    }
    (bip, edges)
}

/// Maximum satisfaction via general-purpose Hopcroft–Karp (`O(√n · |E|)`),
/// returning for every parent the index (into `graph.edges()`) of the couple
/// that visits it, if any.
pub fn max_satisfaction_matching(graph: &Graph) -> Vec<Option<usize>> {
    let (bip, _) = parents_couples_graph(graph);
    hopcroft_karp(&bip).pair_left
}

/// Maximum satisfaction via the specialised linear-time algorithm of
/// Appendix A.3: repeatedly satisfy a parent with exactly one unassigned
/// couple; when none exists, satisfy an arbitrary unsatisfied parent with an
/// arbitrary unassigned couple.
///
/// Returns, for every parent, the index of the couple assigned to it (if it
/// could be satisfied).  The number of satisfied parents equals the maximum
/// matching size.
pub fn max_satisfaction_linear(graph: &Graph) -> Vec<Option<usize>> {
    let edges: Vec<Edge> = graph.edges().collect();
    let n = graph.node_count();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut couple_used: Vec<bool> = vec![false; edges.len()];
    // For every parent, the indices of its incident couples.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        incident[e.u].push(i);
        incident[e.v].push(i);
    }
    let mut available: Vec<usize> = incident.iter().map(Vec::len).collect();
    let mut queue: VecDeque<NodeId> = (0..n).filter(|&p| available[p] == 1).collect();
    let mut satisfied = vec![false; n];

    let assign = |p: NodeId,
                  couple: usize,
                  couple_used: &mut Vec<bool>,
                  available: &mut Vec<usize>,
                  satisfied: &mut Vec<bool>,
                  assignment: &mut Vec<Option<usize>>,
                  queue: &mut VecDeque<NodeId>| {
        couple_used[couple] = true;
        assignment[p] = Some(couple);
        satisfied[p] = true;
        let e = edges[couple];
        for q in [e.u, e.v] {
            available[q] -= 1;
            if !satisfied[q] && available[q] == 1 {
                queue.push_back(q);
            }
        }
    };

    // Phase 1 + 2 interleaved: prefer single-couple parents, otherwise pick
    // any unsatisfied parent with an unassigned couple.  The "arbitrary
    // parent" cursor only moves forward: once a parent is satisfied it stays
    // satisfied, and once its available count hits zero it never recovers, so
    // skipped parents never need to be revisited — keeping the whole
    // algorithm linear in |P| + |E| as Theorem A.2 requires.
    let mut cursor: NodeId = 0;
    loop {
        // Drain the single-couple queue first.
        while let Some(p) = queue.pop_front() {
            if satisfied[p] || available[p] != 1 {
                continue;
            }
            let couple = incident[p]
                .iter()
                .copied()
                .find(|&c| !couple_used[c])
                .expect("available count says one couple remains");
            assign(
                p,
                couple,
                &mut couple_used,
                &mut available,
                &mut satisfied,
                &mut assignment,
                &mut queue,
            );
        }
        // Pick the next unsatisfied parent that still has a couple.
        while cursor < n && (satisfied[cursor] || available[cursor] == 0) {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let p = cursor;
        let couple = incident[p]
            .iter()
            .copied()
            .find(|&c| !couple_used[c])
            .expect("available count is positive");
        assign(
            p,
            couple,
            &mut couple_used,
            &mut available,
            &mut satisfied,
            &mut assignment,
            &mut queue,
        );
    }
    assignment
}

/// Checks that a satisfaction assignment is consistent: every assigned couple
/// is incident to its parent and no couple is assigned twice.
pub fn satisfaction_is_valid(graph: &Graph, assignment: &[Option<usize>]) -> bool {
    let edges: Vec<Edge> = graph.edges().collect();
    if assignment.len() != graph.node_count() {
        return false;
    }
    let mut used = vec![false; edges.len()];
    for (p, &a) in assignment.iter().enumerate() {
        if let Some(c) = a {
            if c >= edges.len() || (edges[c].u != p && edges[c].v != p) || used[c] {
                return false;
            }
            used[c] = true;
        }
    }
    true
}

/// The fair-over-time satisfaction schedule: every couple alternates between
/// its two parent households, visiting the lower-id parent on even holidays
/// and the higher-id parent on odd holidays.  Every parent with at least one
/// child is satisfied at least every other holiday.
#[derive(Debug, Clone)]
pub struct AlternatingSatisfaction {
    edges: Vec<Edge>,
    n: usize,
}

impl AlternatingSatisfaction {
    /// Builds the alternating schedule for a conflict graph.
    pub fn new(graph: &Graph) -> Self {
        AlternatingSatisfaction { edges: graph.edges().collect(), n: graph.node_count() }
    }

    /// The parents satisfied at holiday `t` (sorted).
    pub fn satisfied_set(&self, t: u64) -> Vec<NodeId> {
        let mut satisfied = vec![false; self.n];
        for e in &self.edges {
            let visited = if t.is_multiple_of(2) { e.u.min(e.v) } else { e.u.max(e.v) };
            satisfied[visited] = true;
        }
        (0..self.n).filter(|&p| satisfied[p]).collect()
    }

    /// Whether parent `p` is satisfied at holiday `t`.
    pub fn is_satisfied(&self, p: NodeId, t: u64) -> bool {
        self.satisfied_set(t).binary_search(&p).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::structured::{complete, cycle, path, star};
    use fhg_graph::generators::{barabasi_albert, erdos_renyi};
    use proptest::prelude::*;

    fn satisfied_count(assignment: &[Option<usize>]) -> usize {
        assignment.iter().filter(|a| a.is_some()).count()
    }

    #[test]
    fn star_satisfies_all_but_one() {
        // The hub has five couples; each leaf has one.  Only five couples
        // exist for six parents, so the maximum satisfaction is 5: four
        // leaves keep their couple, one couple visits the hub.
        let g = star(6);
        let matching = max_satisfaction_matching(&g);
        let linear = max_satisfaction_linear(&g);
        assert!(satisfaction_is_valid(&g, &matching));
        assert!(satisfaction_is_valid(&g, &linear));
        assert_eq!(satisfied_count(&matching), 5);
        assert_eq!(satisfied_count(&linear), 5);
    }

    #[test]
    fn single_edge_satisfies_only_one_parent() {
        let g = path(2);
        let linear = max_satisfaction_linear(&g);
        assert_eq!(satisfied_count(&linear), 1, "in-law single-child parents: one wins");
        assert_eq!(satisfied_count(&max_satisfaction_matching(&g)), 1);
    }

    #[test]
    fn cycles_satisfy_everyone() {
        for n in [3usize, 4, 7, 10] {
            let g = cycle(n);
            assert_eq!(satisfied_count(&max_satisfaction_linear(&g)), n);
            assert_eq!(satisfied_count(&max_satisfaction_matching(&g)), n);
        }
    }

    #[test]
    fn paths_leave_at_most_one_unsatisfied_per_two() {
        // P_n has n-1 couples, so at most n-1 parents can be satisfied.
        let g = path(5);
        assert_eq!(satisfied_count(&max_satisfaction_linear(&g)), 4);
    }

    #[test]
    fn empty_and_isolated_parents() {
        let g = Graph::new(4);
        let linear = max_satisfaction_linear(&g);
        assert_eq!(satisfied_count(&linear), 0, "childless parents cannot be satisfied");
        assert!(satisfaction_is_valid(&g, &linear));
        assert!(max_satisfaction_linear(&Graph::new(0)).is_empty());
    }

    #[test]
    fn linear_matches_hopcroft_karp_on_classic_graphs() {
        for g in [star(9), cycle(11), path(12), complete(6), barabasi_albert(40, 2, 3)] {
            let linear = satisfied_count(&max_satisfaction_linear(&g));
            let hk = satisfied_count(&max_satisfaction_matching(&g));
            assert_eq!(linear, hk);
        }
    }

    #[test]
    fn alternation_satisfies_every_parent_with_children_every_other_holiday() {
        let g = erdos_renyi(30, 0.1, 5);
        let alt = AlternatingSatisfaction::new(&g);
        for p in g.nodes() {
            if g.degree(p) == 0 {
                assert!(!alt.is_satisfied(p, 0) && !alt.is_satisfied(p, 1));
            } else {
                assert!(
                    alt.is_satisfied(p, 0) || alt.is_satisfied(p, 1),
                    "parent {p} must be satisfied in one of two consecutive holidays"
                );
                // And the schedule has period 2.
                assert_eq!(alt.is_satisfied(p, 0), alt.is_satisfied(p, 4));
                assert_eq!(alt.is_satisfied(p, 1), alt.is_satisfied(p, 7));
            }
        }
    }

    #[test]
    fn alternation_on_a_single_couple() {
        let g = path(2);
        let alt = AlternatingSatisfaction::new(&g);
        assert_eq!(alt.satisfied_set(0), vec![0]);
        assert_eq!(alt.satisfied_set(1), vec![1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn linear_algorithm_is_optimal(seed in 0u64..400, p in 0.03f64..0.3) {
            let g = erdos_renyi(24, p, seed);
            let linear = max_satisfaction_linear(&g);
            prop_assert!(satisfaction_is_valid(&g, &linear));
            let optimal = satisfied_count(&max_satisfaction_matching(&g));
            prop_assert_eq!(satisfied_count(&linear), optimal,
                "linear-time algorithm must match Hopcroft-Karp");
        }
    }
}
